"""The static-analysis subsystem: verifier, linter, CLI, tune gate.

Four angles on ``repro.analysis``:

* **positive / fuzz** — every tile the tune-space enumerator can
  propose, on every registered backend, generates a kernel that
  passes :func:`repro.analysis.verify_kernel` (hypothesis samples the
  cross-product; the memoized ``tile_report`` keeps repeats free);
* **negative** — deliberately corrupted kernels fail with exactly the
  named error codes (out-of-bounds window, clobbered accumulator,
  register over-allocation, wrong instruction count);
* **linter** — each DET code fires on a minimal reproducer, waivers
  suppress findings only when they name the code *and* give a reason;
* **integration** — the ``repro-check`` CLI exit codes, and the tuner
  dropping (and recording) candidates whose kernel fails
  verification.
"""

from __future__ import annotations

import copy
import dataclasses
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    ERROR_CODES,
    LINT_CODES,
    filter_verified_jobs,
    lint_file,
    lint_paths,
    tile_report,
    verify_kernel,
    verify_target,
)
from repro.analysis.__main__ import main as check_main
from repro.core.loopir import Call, For, Interval, WindowExpr, update
from repro.isa.targets import ISA_TARGETS, target
from repro.sim.pipeline import trace_from_kernel
from repro.tune.space import candidate_tiles
from repro.ukernel.registry import registry_for_machine

# ---------------------------------------------------------------------------
# positive: the whole tune space verifies, on every backend


def _tune_space_pairs():
    """Every (isa, mr, nr) the space enumerator can propose."""
    pairs = []
    for isa in sorted(ISA_TARGETS):
        t = target(isa)
        for m, n in ((96, 96), (256, 256), (13, 20)):
            for mr, nr in candidate_tiles(t.family, m, n, vla=t.vla):
                if (isa, mr, nr) not in pairs:
                    pairs.append((isa, mr, nr))
    return pairs


_PAIRS = _tune_space_pairs()


@given(st.sampled_from(_PAIRS))
@settings(max_examples=len(_PAIRS), deadline=None)
def test_every_tune_space_candidate_verifies(pair):
    isa, mr, nr = pair
    report = tile_report(isa, mr, nr)
    assert report.ok, (
        f"{isa} {mr}x{nr} fails verification:\n"
        + "\n".join(str(f) for f in report.findings)
    )


@pytest.mark.parametrize("isa", sorted(ISA_TARGETS))
def test_verify_target_covers_family_and_vla_tails(isa):
    reports = verify_target(isa)
    assert reports, f"{isa} produced no reports"
    bad = [r for r in reports if not r.ok]
    assert not bad, "\n".join(
        f"{r.name}: {f}" for r in bad for f in r.findings
    )
    if target(isa).vla:
        # the ragged tiles exercise the reduced-AVL vsetvl tail plans
        assert any(r.name.startswith("vla_") for r in reports)


# ---------------------------------------------------------------------------
# negative: corrupted kernels fail with the named codes


def _neon_kernel():
    return registry_for_machine(target("neon").machine).get(8, 12)


def _buffer_label(sym) -> str:
    return str(sym).split("#")[0]


def _rewrite_calls(stmts, fn):
    """Rebuild a statement tree, mapping ``fn`` over every Call."""
    out = []
    for s in stmts:
        if isinstance(s, For):
            out.append(
                update(s, body=type(s.body)(_rewrite_calls(s.body, fn)))
            )
        elif isinstance(s, Call):
            out.append(fn(s))
        else:
            out.append(s)
    return type(stmts)(out)


def _with_body(kernel, bad_ir):
    corrupted = copy.copy(kernel)
    corrupted.proc = type(kernel.proc)(bad_ir)
    return corrupted


def test_out_of_bounds_window_is_E_OOB_ACCESS():
    kernel = _neon_kernel()
    ir = kernel.proc.ir
    done = []

    def shift_ac_window(call):
        # slide the first packed-A load window past the tile edge
        if done:
            return call
        args = []
        for a in call.args:
            if (
                not done
                and isinstance(a, WindowExpr)
                and _buffer_label(a.name) == "Ac"
            ):
                idx = list(a.idx)
                for i, d in enumerate(idx):
                    if isinstance(d, Interval):
                        idx[i] = update(
                            d,
                            lo=update(d.lo, val=6),
                            hi=update(d.hi, val=10),
                        )
                        done.append(True)
                        break
                a = update(a, idx=tuple(idx))
            args.append(a)
        return update(call, args=type(call.args)(args))

    bad_ir = update(ir, body=_rewrite_calls(ir.body, shift_ac_window))
    assert done
    report = verify_kernel(_with_body(kernel, bad_ir))
    assert report.codes == ("E_OOB_ACCESS",)


def test_clobbered_accumulator_is_E_ACC_CLOBBER():
    kernel = _neon_kernel()
    ir = kernel.proc.ir

    acc_window = []

    def find_fma(stmts):
        for s in stmts:
            if isinstance(s, For):
                find_fma(s.body)
            elif isinstance(s, Call) and not acc_window:
                wins = [
                    a for a in s.args if isinstance(a, WindowExpr)
                ]
                if len(wins) >= 3:
                    acc_window.append(wins[0])

    find_fma(ir.body)
    assert acc_window, "no FMA call found"

    done = []

    def redirect_load(call):
        # point the first A-register load at an accumulator register
        if done:
            return call
        args = list(call.args)
        for i, a in enumerate(args):
            if (
                isinstance(a, WindowExpr)
                and _buffer_label(a.name) == "A_reg"
            ):
                point, interval = a.idx
                args[i] = update(
                    a,
                    name=acc_window[0].name,
                    idx=(point, point, interval),
                )
                done.append(True)
                return update(call, args=type(call.args)(args))
        return call

    bad_ir = update(ir, body=_rewrite_calls(ir.body, redirect_load))
    assert done
    report = verify_kernel(_with_body(kernel, bad_ir))
    # the load overwrites a live accumulator, and the FMA now reads an
    # A register nothing ever wrote
    assert "E_ACC_CLOBBER" in report.codes
    assert "E_UNDEF_READ" in report.codes


def test_register_overallocation_is_E_REG_PRESSURE():
    report = verify_kernel(_neon_kernel(), registers=16)
    assert report.codes == ("E_REG_PRESSURE",)


def test_wrong_instruction_count_is_E_COUNT_DRIFT():
    kernel = _neon_kernel()
    trace = trace_from_kernel(kernel)
    starved = dataclasses.replace(trace, ops=trace.ops[:-4])
    report = verify_kernel(kernel, trace=starved)
    assert report.codes == ("E_COUNT_DRIFT",)


def test_census_agrees_with_timing_model_trace():
    """The verifier's static census is the trace the model prices."""
    kernel = _neon_kernel()
    assert verify_kernel(
        kernel, trace=trace_from_kernel(kernel)
    ).ok


def test_error_catalogue_is_complete():
    produced = {
        "E_OOB_ACCESS",
        "E_ACC_CLOBBER",
        "E_UNDEF_READ",
        "E_REG_PRESSURE",
        "E_COUNT_DRIFT",
    }
    assert produced <= set(ERROR_CODES)
    assert all(ERROR_CODES[code] for code in ERROR_CODES)


# ---------------------------------------------------------------------------
# determinism linter


def _lint_source(tmp_path: Path, source: str):
    f = tmp_path / "sample.py"
    f.write_text(source)
    return lint_file(f)


def _codes(findings):
    return [f.code for f in findings]


def test_det101_wall_clock(tmp_path):
    findings = _lint_source(
        tmp_path,
        "import time\n"
        "def f():\n"
        "    return time.time()\n",
    )
    assert _codes(findings) == ["DET101"]
    assert findings[0].line == 3


def test_det101_sees_through_import_aliases(tmp_path):
    findings = _lint_source(
        tmp_path,
        "from time import perf_counter as clock\n"
        "def f():\n"
        "    return clock()\n",
    )
    assert _codes(findings) == ["DET101"]


def test_det102_unseeded_random(tmp_path):
    findings = _lint_source(
        tmp_path,
        "import random\n"
        "a = random.random()\n"
        "rng = random.Random()\n"
        "ok = random.Random(42)\n",
    )
    assert _codes(findings) == ["DET102", "DET102"]


def test_det103_set_iteration(tmp_path):
    findings = _lint_source(
        tmp_path,
        "for x in {1, 2, 3}:\n"
        "    print(x)\n"
        "names = list({'b', 'a'})\n"
        "ok = sorted({'b', 'a'})\n",
    )
    assert _codes(findings) == ["DET103", "DET103"]


def test_det104_unsorted_json(tmp_path):
    findings = _lint_source(
        tmp_path,
        "import json\n"
        "def f(d):\n"
        "    bad = json.dumps(d)\n"
        "    ok1 = json.dumps(d, sort_keys=True)\n"
        "    ok2 = json.dumps({'literal': 1})\n"
        "    return bad, ok1, ok2\n",
    )
    assert _codes(findings) == ["DET104"]
    assert findings[0].line == 3


def test_det105_blocking_in_async(tmp_path):
    findings = _lint_source(
        tmp_path,
        "import time\n"
        "async def f():\n"
        "    time.sleep(1)\n"
        "def g():\n"
        "    time.sleep(1)\n",
    )
    # sync sleep in async code only; the sync function is fine
    assert _codes(findings) == ["DET105"]
    assert findings[0].line == 3


def test_waiver_suppresses_named_code(tmp_path):
    findings = _lint_source(
        tmp_path,
        "import time\n"
        "t = time.time()  # det: ok DET101 (test fixture)\n",
    )
    assert findings == []


def test_waiver_requires_reason(tmp_path):
    findings = _lint_source(
        tmp_path,
        "import time\n"
        "t = time.time()  # det: ok DET101\n",
    )
    assert _codes(findings) == ["DET101"]


def test_waiver_only_covers_named_codes(tmp_path):
    findings = _lint_source(
        tmp_path,
        "import time, random\n"
        "t = (time.time(), random.random())"
        "  # det: ok DET101 (fixture)\n",
    )
    assert _codes(findings) == ["DET102"]


def test_syntax_error_is_DET100(tmp_path):
    findings = _lint_source(tmp_path, "def broken(:\n")
    assert _codes(findings) == ["DET100"]


def test_lint_paths_recurses_and_sorts(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "b.py").write_text(
        "import time\nt = time.time()\n"
    )
    (tmp_path / "pkg" / "a.py").write_text(
        "import random\nr = random.random()\n"
    )
    findings = lint_paths([tmp_path])
    assert _codes(findings) == ["DET102", "DET101"]
    assert findings[0].path.endswith("a.py")


def test_repo_sources_are_lint_clean():
    """The tree the CI job lints has no unwaived findings."""
    pkg = Path(__file__).resolve().parent.parent / "src" / "repro"
    findings = lint_paths([pkg])
    assert findings == [], "\n".join(str(f) for f in findings)


def test_lint_catalogue_documents_every_code():
    assert set(LINT_CODES) == {
        "DET101",
        "DET102",
        "DET103",
        "DET104",
        "DET105",
    }


# ---------------------------------------------------------------------------
# CLI


def test_cli_verify_one_tile():
    assert check_main(
        ["verify", "--isa", "neon", "--tiles", "8x12"]
    ) == 0


def test_cli_verify_vla_tail_plan():
    assert check_main(
        ["verify", "--isa", "rvv128", "--tiles", "7x12"]
    ) == 0


def test_cli_verify_rejects_bad_tile_spec():
    assert check_main(
        ["verify", "--isa", "neon", "--tiles", "8by12"]
    ) == 2


def test_cli_verify_rejects_unknown_isa():
    assert check_main(["verify", "--isa", "sparc"]) == 2


def test_cli_lint_exit_codes(tmp_path):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import time\nt = time.time()\n")
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert check_main(["lint", str(clean)]) == 0
    assert check_main(["lint", str(dirty)]) == 1


# ---------------------------------------------------------------------------
# the tune gate


def test_filter_verified_jobs_drops_failing_tile(monkeypatch):
    from repro import analysis
    from repro.tune.space import enumerate_space

    jobs = enumerate_space(["neon"], [(96, 96, 96)])
    assert jobs

    bad_tile = (jobs[0].mr, jobs[0].nr)

    def fake_report(isa, mr, nr):
        report = analysis.Report(name=f"{isa}-{mr}x{nr}")
        if (mr, nr) == bad_tile:
            report.add("E_OOB_ACCESS", "injected failure")
        return report

    monkeypatch.setattr(analysis, "tile_report", fake_report)
    kept, rejected = filter_verified_jobs(jobs)
    assert ("neon",) + bad_tile in rejected
    assert rejected[("neon",) + bad_tile].codes == ("E_OOB_ACCESS",)
    assert all((j.mr, j.nr) != bad_tile for j in kept)
    assert len(kept) + sum(
        1 for j in jobs if (j.mr, j.nr) == bad_tile
    ) == len(jobs)


def test_sweep_records_rejected_tiles(monkeypatch):
    from repro import analysis, tune

    bad_tile = []

    def fake_report(isa, mr, nr):
        if not bad_tile:
            bad_tile.append((mr, nr))
        report = analysis.Report(name=f"{isa}-{mr}x{nr}")
        if (mr, nr) == bad_tile[0]:
            report.add("E_REG_PRESSURE", "injected failure")
        return report

    monkeypatch.setattr(analysis, "tile_report", fake_report)
    artifact = tune.sweep(["neon"], [(96, 96, 96)])
    mr, nr = bad_tile[0]
    assert artifact["rejected_tiles"] == {
        f"neon:{mr}x{nr}": ["E_REG_PRESSURE"]
    }
    winner = artifact["machines"]["neon"]["best"]["96x96x96"]
    assert tuple(winner["kernel"]) != (mr, nr)


def test_clean_sweep_artifact_has_no_rejection_key():
    from repro import tune

    artifact = tune.sweep(["neon"], [(96, 96, 96)])
    assert "rejected_tiles" not in artifact
    assert artifact["machines"]["neon"]["best"]["96x96x96"]
