"""Tests for the rolling-window SLO monitor (repro.obs.slo).

The load-bearing invariants:

* good/bad classification keys on the latency threshold, and sheds
  always spend error budget;
* window aggregates are exact over their time buckets, throughput is
  computed over the elapsed portion of the window, and percentile
  estimates are bucket upper bounds clamped to the observed maximum;
* a burn-rate rule fires only when **both** its windows exceed the
  threshold — a transient blip that has left the short window cannot
  page;
* memory stays O(buckets): buckets older than the longest rule window
  are pruned;
* snapshots are plain deterministic JSON — two identically-fed
  monitors serialize identically.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import BurnRateRule, SloMonitor
from repro.obs.slo import DEFAULT_RULES, WINDOW_LATENCY_BOUNDS_MS


def _monitor(**kwargs) -> SloMonitor:
    defaults = dict(
        threshold_ms=10.0,
        objective=0.9,  # budget 0.1 -> burn = 10 x error rate
        bucket_ms=10.0,
        rules=(BurnRateRule("r", 100.0, 1_000.0, 2.0),),
    )
    defaults.update(kwargs)
    return SloMonitor(**defaults)


class TestValidation:
    def test_rule_windows_must_be_ordered_and_positive(self):
        with pytest.raises(ValueError, match="must be shorter"):
            BurnRateRule("bad", 100.0, 100.0, 1.0)
        with pytest.raises(ValueError, match="positive"):
            BurnRateRule("bad", -1.0, 100.0, 1.0)
        with pytest.raises(ValueError, match="threshold"):
            BurnRateRule("bad", 1.0, 100.0, 0.0)

    def test_monitor_parameter_validation(self):
        with pytest.raises(ValueError, match="threshold_ms"):
            SloMonitor(threshold_ms=0.0)
        with pytest.raises(ValueError, match="objective"):
            SloMonitor(threshold_ms=1.0, objective=1.0)
        with pytest.raises(ValueError, match="bucket_ms"):
            SloMonitor(threshold_ms=1.0, bucket_ms=0.0)

    def test_default_rules_are_the_scaled_sre_pair(self):
        assert [r.name for r in DEFAULT_RULES] == ["fast", "slow"]
        for rule in DEFAULT_RULES:
            assert rule.short_ms < rule.long_ms


class TestRecording:
    def test_good_bad_split_on_the_threshold(self):
        mon = _monitor()
        mon.record_completion(5.0, 10.0)  # exactly at threshold: good
        mon.record_completion(6.0, 10.1)  # over: bad
        assert mon.total_completed == 2
        assert mon.total_good == 1

    def test_sheds_always_spend_budget(self):
        mon = _monitor()
        mon.record_shed(5.0)
        window = mon.window(5.0, 100.0)
        assert window["shed"] == 1
        assert window["bad"] == 1
        assert window["error_rate"] == 1.0

    def test_window_counts_and_burn_rate(self):
        mon = _monitor()
        for t in range(10):  # 10 completions, 2 bad
            mon.record_completion(float(t * 10), 20.0 if t < 2 else 1.0)
        window = mon.window(95.0, 100.0)
        assert window["completed"] == 10
        assert window["bad"] == 2
        assert window["error_rate"] == pytest.approx(0.2)
        # budget is 0.1 -> burning 2x sustainable
        assert window["burn_rate"] == pytest.approx(2.0)

    def test_throughput_uses_elapsed_not_nominal_window(self):
        mon = _monitor()
        mon.record_completion(0.0, 1.0)
        mon.record_completion(10.0, 1.0)
        # only 10 ms elapsed: a 1-second window must not dilute to 2 rps
        window = mon.window(10.0, 1_000.0)
        assert window["throughput_rps"] == pytest.approx(2 / 10.0 * 1e3)

    def test_events_roll_out_of_the_window(self):
        mon = _monitor()
        mon.record_completion(0.0, 20.0)  # bad
        mon.record_completion(500.0, 1.0)  # good, much later
        recent = mon.window(500.0, 100.0)
        assert recent["completed"] == 1
        assert recent["bad"] == 0


class TestPercentiles:
    def test_estimates_are_bucket_bounds_clamped_to_max(self):
        mon = _monitor()
        for _ in range(99):
            mon.record_completion(5.0, 0.7)  # bucket bound 1.0
        mon.record_completion(5.0, 3.0)  # bucket bound 5.0, max 3.0
        latency = mon.window(5.0, 100.0)["latency"]
        assert latency["p50_ms"] == 1.0  # upper bound of 0.7's bucket
        assert latency["p99_ms"] == 1.0
        assert latency["max_ms"] == 3.0
        # the top rank lands in 3.0's bucket (bound 5.0) but is clamped
        assert mon.window(5.0, 100.0)["latency"]["p50_ms"] <= 3.0

    def test_overflow_rank_reports_observed_max(self):
        mon = _monitor()
        huge = WINDOW_LATENCY_BOUNDS_MS[-1] * 3
        mon.record_completion(5.0, huge)
        latency = mon.window(5.0, 100.0)["latency"]
        assert latency["p99_ms"] == huge
        assert latency["max_ms"] == huge

    def test_empty_window_percentiles_are_none(self):
        mon = _monitor()
        latency = mon.window(0.0, 100.0)["latency"]
        assert latency["p50_ms"] is None
        assert latency["mean_ms"] is None
        assert latency["max_ms"] is None


class TestAlerts:
    def test_fires_only_when_both_windows_are_hot(self):
        mon = _monitor()
        for t in range(20):  # sustained 100% bad: burn 10 >> 2
            mon.record_completion(float(t * 10), 100.0)
        (alert,) = mon.alerts(195.0)
        assert alert["firing"] is True
        assert alert["short_burn_rate"] >= alert["threshold"]
        assert alert["long_burn_rate"] >= alert["threshold"]

    def test_blip_outside_the_short_window_does_not_page(self):
        mon = _monitor()
        for t in range(5):  # a bad burst early on
            mon.record_completion(float(t), 100.0)
        # 500 ms later: still inside the 1 s long window, but the
        # 100 ms short window is clean again
        (alert,) = mon.alerts(500.0)
        assert alert["long_burn_rate"] >= alert["threshold"]
        assert alert["short_burn_rate"] == 0.0
        assert alert["firing"] is False

    def test_good_traffic_never_fires(self):
        mon = _monitor()
        for t in range(50):
            mon.record_completion(float(t * 10), 1.0)
        (alert,) = mon.alerts(495.0)
        assert alert["firing"] is False
        assert alert["short_burn_rate"] == 0.0


class TestSnapshotAndMemory:
    def test_snapshot_is_deterministic_json(self):
        def build():
            mon = _monitor()
            for t in range(30):
                mon.record_completion(float(t * 7), 3.0 + (t % 5))
                if t % 4 == 0:
                    mon.record_shed(float(t * 7))
            return json.dumps(mon.snapshot(210.0), sort_keys=True)

        assert build() == build()

    def test_snapshot_shape(self):
        mon = _monitor()
        mon.record_completion(5.0, 1.0)
        snap = mon.snapshot(5.0)
        assert snap["totals"]["completed"] == 1
        assert snap["error_budget"] == pytest.approx(0.1)
        assert set(snap["windows"]) == {"100ms", "1000ms"}
        assert [a["rule"] for a in snap["alerts"]] == ["r"]

    def test_old_buckets_are_pruned(self):
        mon = _monitor()
        for t in range(0, 100_000, 10):
            mon.record_completion(float(t), 1.0)
        # horizon is the 1 s long window at 10 ms buckets (+ slack)
        assert len(mon._buckets) < 150

    def test_empty_snapshot_has_zero_totals(self):
        mon = _monitor()
        snap = mon.snapshot(0.0)
        assert snap["totals"] == {
            "requests": 0,
            "completed": 0,
            "good": 0,
            "shed": 0,
            "error_rate": 0.0,
        }
