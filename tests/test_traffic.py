"""Tests for the arrival-trace generators (repro.serve.traffic).

The load-bearing invariants:

* every generator — synthetic, diurnal, MMPP — is a pure function of
  its seed: same parameters, same trace, byte for byte;
* rate parameters are validated with actionable messages (a zero rate
  names the fix, not just the failure);
* CSV round-trips stay bit-exact at large request counts, where float
  formatting shortcuts would corrupt replay;
* the ``--arrivals`` spec parser accepts all four spellings and names
  unknown or missing keys instead of silently defaulting.
"""

from __future__ import annotations

import pytest

from repro.serve import (
    Request,
    diurnal_trace,
    load_trace,
    mmpp_trace,
    save_trace,
    synthetic_trace,
    trace_from_spec,
)


def _is_ordered(trace):
    return all(
        a.arrival_ms <= b.arrival_ms for a, b in zip(trace, trace[1:])
    )


class TestDiurnalTrace:
    def test_seeded_determinism(self):
        a = diurnal_trace(5.0, 50.0, 10_000.0, period_ms=5_000.0, seed=7)
        b = diurnal_trace(5.0, 50.0, 10_000.0, period_ms=5_000.0, seed=7)
        assert a == b
        c = diurnal_trace(5.0, 50.0, 10_000.0, period_ms=5_000.0, seed=8)
        assert a != c

    def test_shape_and_bounds(self):
        trace = diurnal_trace(
            10.0, 100.0, 20_000.0, period_ms=20_000.0, seed=3
        )
        assert trace, "a 20s window at >= 10 rps cannot be empty"
        assert _is_ordered(trace)
        assert all(0.0 < r.arrival_ms <= 20_000.0 for r in trace)
        assert [r.request_id for r in trace] == list(range(len(trace)))

    def test_peak_hours_are_busier_than_troughs(self):
        # one full period: the middle half-period is the peak hump
        period = 40_000.0
        trace = diurnal_trace(2.0, 80.0, period, period_ms=period, seed=0)
        trough = sum(
            1 for r in trace if r.arrival_ms < period / 4
        ) + sum(1 for r in trace if r.arrival_ms > 3 * period / 4)
        peak = sum(
            1
            for r in trace
            if period / 4 <= r.arrival_ms <= 3 * period / 4
        )
        assert peak > 2 * trough

    def test_flat_cycle_matches_poisson_rate(self):
        # base == peak degenerates to a homogeneous Poisson process
        trace = diurnal_trace(30.0, 30.0, 60_000.0, seed=1)
        rate = len(trace) / 60.0
        assert 20.0 < rate < 40.0

    def test_zero_base_rate_rejected_with_fix(self):
        with pytest.raises(ValueError, match="small positive rate"):
            diurnal_trace(0.0, 50.0, 1_000.0)

    def test_negative_base_rate_rejected(self):
        with pytest.raises(ValueError, match="base_rps must be positive"):
            diurnal_trace(-1.0, 50.0, 1_000.0)

    def test_peak_below_base_rejected(self):
        with pytest.raises(ValueError, match="peak_rps"):
            diurnal_trace(50.0, 5.0, 1_000.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"duration_ms": 0.0},
            {"duration_ms": -5.0},
            {"period_ms": 0.0},
            {"period_ms": -1.0},
        ],
    )
    def test_nonpositive_windows_rejected(self, kwargs):
        params = {
            "base_rps": 5.0,
            "peak_rps": 50.0,
            "duration_ms": 1_000.0,
            **kwargs,
        }
        with pytest.raises(ValueError, match="must be positive"):
            diurnal_trace(**params)


class TestMmppTrace:
    def test_seeded_determinism(self):
        a = mmpp_trace((5.0, 80.0), 300.0, 5_000.0, seed=11)
        b = mmpp_trace((5.0, 80.0), 300.0, 5_000.0, seed=11)
        assert a == b
        assert a != mmpp_trace((5.0, 80.0), 300.0, 5_000.0, seed=12)

    def test_start_state_changes_the_trace(self):
        quiet = mmpp_trace(
            (1.0, 500.0), 1_000.0, 2_000.0, seed=0, start_state=0
        )
        burst = mmpp_trace(
            (1.0, 500.0), 1_000.0, 2_000.0, seed=0, start_state=1
        )
        assert len(burst) > len(quiet)

    def test_shape_and_bounds(self):
        trace = mmpp_trace((10.0, 200.0), 250.0, 8_000.0, seed=2)
        assert trace
        assert _is_ordered(trace)
        assert all(0.0 < r.arrival_ms <= 8_000.0 for r in trace)
        assert [r.request_id for r in trace] == list(range(len(trace)))

    def test_modulation_is_bursty(self):
        # wildly separated rates: windows of the trace must show both
        # regimes, which a homogeneous process at either rate would not
        trace = mmpp_trace((2.0, 2_000.0), 500.0, 20_000.0, seed=4)
        counts = [0] * 20
        for req in trace:
            counts[min(19, int(req.arrival_ms // 1_000.0))] += 1
        assert max(counts) > 200  # burst windows
        assert min(counts) < 100  # quiet windows

    def test_single_state_rejected(self):
        with pytest.raises(ValueError, match=">= 2 rate states"):
            mmpp_trace((10.0,), 100.0, 1_000.0)

    def test_zero_rate_state_rejected_with_fix(self):
        with pytest.raises(
            ValueError, match="small positive rate instead"
        ):
            mmpp_trace((0.0, 80.0), 100.0, 1_000.0)
        with pytest.raises(ValueError, match="rate state 1"):
            mmpp_trace((5.0, -3.0), 100.0, 1_000.0)

    def test_nonpositive_dwell_and_duration_rejected(self):
        with pytest.raises(ValueError, match="mean_dwell_ms"):
            mmpp_trace((5.0, 80.0), 0.0, 1_000.0)
        with pytest.raises(ValueError, match="duration_ms"):
            mmpp_trace((5.0, 80.0), 100.0, -1.0)

    def test_start_state_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="start_state 2"):
            mmpp_trace((5.0, 80.0), 100.0, 1_000.0, start_state=2)


class TestCsvRoundTrip:
    def test_large_mmpp_trace_round_trips_bit_exact(self, tmp_path):
        # ~100k requests: float shortcuts in the CSV writer would
        # corrupt exactly this kind of replay
        trace = mmpp_trace(
            (500.0, 5_000.0), 200.0, 60_000.0, seed=9
        )
        assert len(trace) > 50_000
        path = tmp_path / "big.csv"
        save_trace(trace, path)
        assert load_trace(path) == trace

    def test_large_diurnal_trace_round_trips_bit_exact(self, tmp_path):
        trace = diurnal_trace(
            200.0, 4_000.0, 60_000.0, period_ms=60_000.0, seed=5
        )
        assert len(trace) > 50_000
        path = tmp_path / "big.csv"
        save_trace(trace, path)
        assert load_trace(path) == trace


class TestTraceFromSpec:
    def test_synthetic_uses_cli_defaults(self):
        trace, info = trace_from_spec(
            "synthetic", rate_rps=20.0, duration_ms=500.0, seed=3
        )
        assert trace == synthetic_trace(20.0, 500.0, seed=3)
        assert info["kind"] == "synthetic"
        assert info["requests"] == len(trace)

    def test_diurnal_spec(self):
        spec = "diurnal:base=5,peak=50,period=2000,duration=4000,seed=6"
        trace, info = trace_from_spec(spec)
        assert trace == diurnal_trace(
            5.0, 50.0, 4_000.0, period_ms=2_000.0, seed=6
        )
        assert info["kind"] == "diurnal"
        assert info["period_ms"] == 2_000.0

    def test_mmpp_spec_with_colon_rates(self):
        spec = "mmpp:rates=5:80:300,dwell=250,duration=3000,seed=2,start=1"
        trace, info = trace_from_spec(spec)
        assert trace == mmpp_trace(
            (5.0, 80.0, 300.0), 250.0, 3_000.0, seed=2, start_state=1
        )
        assert info["rates_rps"] == [5.0, 80.0, 300.0]

    def test_generator_specs_inherit_cli_duration_and_seed(self):
        trace, info = trace_from_spec(
            "mmpp:rates=5:80,dwell=100", duration_ms=2_000.0, seed=4
        )
        assert info["duration_ms"] == 2_000.0
        assert info["seed"] == 4
        assert trace == mmpp_trace((5.0, 80.0), 100.0, 2_000.0, seed=4)

    def test_unknown_key_is_named(self):
        with pytest.raises(ValueError, match="ratez"):
            trace_from_spec("mmpp:ratez=5:80,dwell=100")
        with pytest.raises(ValueError, match="peek"):
            trace_from_spec("diurnal:base=5,peek=50")

    def test_missing_keys_are_named(self):
        with pytest.raises(ValueError, match="dwell"):
            trace_from_spec("mmpp:rates=5:80")
        with pytest.raises(ValueError, match="peak"):
            trace_from_spec("diurnal:base=5")

    def test_malformed_pair_rejected(self):
        with pytest.raises(ValueError, match="key=value"):
            trace_from_spec("diurnal:base=5,peak50")

    def test_csv_path_replays(self, tmp_path):
        trace = synthetic_trace(40.0, 300.0, seed=1)
        path = tmp_path / "replay.csv"
        save_trace(trace, path)
        loaded, info = trace_from_spec(str(path))
        assert loaded == trace
        assert info == {
            "kind": "csv",
            "path": str(path),
            "requests": len(trace),
        }

    def test_missing_csv_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            trace_from_spec(str(tmp_path / "nope.csv"))


def test_request_is_frozen():
    req = Request(request_id=0, arrival_ms=1.0)
    with pytest.raises(AttributeError):
        req.arrival_ms = 2.0
