"""Tests for the Section III micro-kernel generator.

Checks three layers: the structural properties the paper's figures show at
each intermediate step, semantic equivalence of every step against the
reference kernel, and the full kernel family across shapes and data types.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).parent))

from helpers import assert_equivalent

from repro.core.loopir import Alloc
from repro.isa.avx512 import AVX512_F32_LIB
from repro.isa.neon import NEON_F32_LIB
from repro.isa.neon_fp16 import NEON_F16_LIB
from repro.ukernel.generator import (
    generate_all_steps,
    generate_microkernel,
    make_scaled_reference_kernel,
)


def run_kernel(kernel, kc=6, seed=0):
    rng = np.random.default_rng(seed)
    dt = np.float16 if kernel.dtype == "f16" else np.float32
    ac = rng.random((kc, kernel.mr)).astype(dt)
    bc = rng.random((kc, kernel.nr)).astype(dt)
    c = rng.random((kernel.nr, kernel.mr)).astype(dt)
    expected = c.astype(np.float64) + (
        ac.astype(np.float64).T @ bc.astype(np.float64)
    ).T
    kernel.proc.interpret(kc, ac, bc, c)
    tol = 5e-2 if kernel.dtype == "f16" else 1e-4
    np.testing.assert_allclose(c.astype(np.float64), expected, rtol=tol, atol=tol)


class TestStepStructure:
    """The v1..v6 intermediates must look like the paper's Figures 6-11."""

    @pytest.fixture(scope="class")
    def steps(self, registry):
        return registry.get(8, 12).steps

    def test_v1_specializes_bounds(self, steps):
        text = str(steps["v1_specialized"])
        assert "seq(0, 12)" in text and "seq(0, 8)" in text
        assert "MR" not in text and "NR" not in text

    def test_v2_splits_to_vector_length(self, steps):
        text = str(steps["v2_loop_structure"])
        assert "for jt in seq(0, 3)" in text
        assert "for it in seq(0, 2)" in text
        assert "for itt in seq(0, 4)" in text

    def test_v3_c_register_shape(self, steps):
        p = steps["v3_c_registers"]
        alloc = p.find("C_reg: _").stmt()
        assert isinstance(alloc, Alloc)
        assert "f32[12, 2, 4]" in str(alloc.type)
        assert str(alloc.mem) == "Neon"

    def test_v3_load_store_hoisted_out_of_k(self, steps):
        p = steps["v3_c_registers"]
        text = str(p)
        # the C-tile load nest appears before the k loop, the store after
        assert text.index("neon_vld_4xf32(C_reg") < text.index("for k in")
        assert text.index("neon_vst_4xf32") > text.index("for k in")

    def test_v4_operand_registers(self, steps):
        p = steps["v4_ab_registers"]
        assert "A_reg: f32[2, 4] @ Neon" in str(p)
        assert "B_reg: f32[3, 4] @ Neon" in str(p)

    def test_v5_uses_lane_fma(self, steps):
        assert "neon_vfmla_4xf32_4xf32" in str(steps["v5_fma"])

    def test_v6_loads_unrolled(self, steps):
        p = steps["v6_unrolled"]
        text = str(p)
        # 2 A loads + 3 B loads appear as straight-line calls (Figure 11)
        assert text.count("neon_vld_4xf32(A_reg") == 2
        assert text.count("neon_vld_4xf32(B_reg") == 3

    def test_every_step_semantically_equal(self, registry):
        kernel = registry.get(8, 12)
        reference = kernel.steps["v1_specialized"]
        for name, step in kernel.steps.items():
            assert_equivalent(reference, step, sizes={"KC": 5}, atol=1e-4)


class TestKernelFamily:
    @pytest.mark.parametrize(
        "mr,nr", [(8, 12), (8, 8), (8, 4), (4, 12), (4, 8), (4, 4)]
    )
    def test_packed_family_semantics(self, registry, mr, nr):
        run_kernel(registry.get(mr, nr))

    @pytest.mark.parametrize("mr,nr", [(1, 12), (1, 8), (1, 4)])
    def test_row_family_semantics(self, registry, mr, nr):
        kernel = registry.get(mr, nr)
        assert kernel.variant == "row"
        run_kernel(kernel)

    def test_broadcast_variant_semantics(self):
        kernel = generate_microkernel(8, 6, NEON_F32_LIB, variant="broadcast")
        assert kernel.variant == "broadcast"
        run_kernel(kernel)

    def test_kernel_names_encode_shape(self, registry):
        assert registry.get(8, 12).name == "uk_8x12_f32_packed"

    def test_flops_per_k(self, registry):
        assert registry.get(8, 12).flops_per_k() == 192

    def test_unsupported_shape_rejected(self):
        with pytest.raises(ValueError, match="variant"):
            generate_microkernel(3, 12, NEON_F32_LIB)

    def test_packed_requires_divisible(self):
        with pytest.raises(ValueError, match="divisible"):
            generate_microkernel(6, 12, NEON_F32_LIB, variant="packed")


class TestOtherTargets:
    def test_fp16_kernel(self):
        kernel = generate_microkernel(8, 16, NEON_F16_LIB)
        assert kernel.dtype == "f16"
        assert kernel.lanes == 8
        assert "neon_vfmla_8xf16_8xf16" in str(kernel.proc)
        run_kernel(kernel)

    def test_avx512_uses_broadcast(self):
        kernel = generate_microkernel(16, 14, AVX512_F32_LIB)
        assert kernel.variant == "broadcast"
        assert "_mm512_fmadd_ps" not in kernel.proc.c_code() or True
        assert "mm512_fmadd_ps" in str(kernel.proc)
        run_kernel(kernel)

    def test_avx512_rejects_lane_variant(self):
        with pytest.raises(ValueError, match="lane"):
            generate_microkernel(16, 16, AVX512_F32_LIB, variant="packed")

    def test_rvv_broadcast_fuses_splat(self):
        from repro.isa.rvv import RVV128_F32_LIB

        kernel = generate_microkernel(8, 12, RVV128_F32_LIB)
        assert kernel.variant == "broadcast"
        text = str(kernel.proc)
        assert "vfmacc_vf" in text and "B_reg" not in text
        run_kernel(kernel)

    def test_avx512_broadcast_still_stages_b(self):
        # ISAs without a scalar-operand FMA keep the splat register
        kernel = generate_microkernel(16, 6, AVX512_F32_LIB)
        text = str(kernel.proc)
        assert "B_reg" in text and "mm512_set1_ps" in text

    def test_default_lib_is_lazy_neon(self):
        kernel = generate_microkernel(4, 4)
        assert "neon_" in str(kernel.proc)


class TestVlaGeneration:
    """MR not a multiple of the vector length on a VLA ISA (RVV)."""

    def test_ragged_plan_parts(self):
        from repro.isa.rvv import rvv_lib_factory
        from repro.ukernel.generator import generate_vla_microkernel

        plan = generate_vla_microkernel(7, 12, rvv_lib_factory(128))
        assert [(off, k.mr) for off, k in plan.parts] == [(0, 4), (4, 3)]
        assert plan.flops_per_k() == 2 * 7 * 12

    def test_ragged_plan_semantics(self):
        from repro.isa.rvv import rvv_lib_factory
        from repro.ukernel.generator import generate_vla_microkernel

        plan = generate_vla_microkernel(5, 8, rvv_lib_factory(256))
        kc = 4
        rng = np.random.default_rng(2)
        ac = rng.random((kc, 5), dtype=np.float32)
        bc = rng.random((kc, 8), dtype=np.float32)
        c = np.zeros((8, 5), dtype=np.float32)
        expected = (ac.astype(np.float64).T @ bc.astype(np.float64)).T
        plan.interpret(kc, ac, bc, c)
        np.testing.assert_allclose(c, expected, rtol=1e-5, atol=1e-6)


class TestScaledReference:
    def test_alpha_beta_semantics(self):
        p = make_scaled_reference_kernel()
        rng = np.random.default_rng(3)
        kc, mr, nr = 4, 2, 3
        ac = rng.random((kc, mr), dtype=np.float32)
        bc = rng.random((kc, nr), dtype=np.float32)
        c = rng.random((nr, mr), dtype=np.float32)
        alpha = np.array([0.5], dtype=np.float32)
        beta = np.array([2.0], dtype=np.float32)
        expected = beta[0] * c + alpha[0] * (ac.T @ bc).T
        p.interpret(mr, nr, kc, alpha, ac, bc, beta, c)
        np.testing.assert_allclose(c, expected, rtol=1e-5)

    def test_generate_all_steps_order(self):
        steps = generate_all_steps(4, 4)
        names = [name for name, _ in steps]
        assert names == [
            "v1_specialized",
            "v2_loop_structure",
            "v3_c_registers",
            "v4_ab_registers",
            "v5_fma",
            "v6_unrolled",
        ]
