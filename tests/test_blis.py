"""Tests for the BLIS substrate: tile parameters, packing, the GEMM driver."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blis.gemm import BlisGemm
from repro.blis.packing import (
    load_c_tile,
    pack_a_panels,
    pack_b_panels,
    unpack_c_tile,
)
from repro.blis.params import analytical_tile_params, clamp_tiles
from repro.blis.reference import naive_gemm
from repro.isa.machine import CARMEL
from repro.sim.memory import TileParams


class TestAnalyticalParams:
    def test_carmel_kc_is_512(self):
        """The paper: BLIS packs with kc = 512 on this ARM architecture."""
        tiles = analytical_tile_params(8, 12, CARMEL)
        assert tiles.kc == 512

    def test_mc_multiple_of_mr(self):
        tiles = analytical_tile_params(8, 12, CARMEL)
        assert tiles.mc % 8 == 0
        assert tiles.nc % 12 == 0

    def test_blocks_fit_their_cache_levels(self):
        tiles = analytical_tile_params(8, 12, CARMEL)
        assert tiles.mc * tiles.kc * 4 <= CARMEL.cache("L2").size_bytes
        assert tiles.kc * tiles.nc * 4 <= CARMEL.cache("L3").size_bytes

    def test_wider_kernel_smaller_kc(self):
        wide = analytical_tile_params(8, 24, CARMEL)
        narrow = analytical_tile_params(8, 12, CARMEL)
        assert wide.kc <= narrow.kc

    def test_clamp_tiles(self):
        tiles = analytical_tile_params(8, 12, CARMEL)
        clamped = clamp_tiles(tiles, 100, 64, 147)
        assert clamped.kc == 147
        assert clamped.mc == 100
        assert clamped.nc == 64

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            analytical_tile_params(0, 12)


class TestPacking:
    def test_pack_a_layout(self):
        a = np.arange(24, dtype=np.float32).reshape(6, 4)  # mc=6, kc=4
        panels = pack_a_panels(a, mr=4)
        assert panels.shape == (2, 4, 4)
        # panel 0, k-slice i holds A[0:4, i]
        np.testing.assert_array_equal(panels[0, 2], a[0:4, 2])
        # ragged second panel zero-padded
        np.testing.assert_array_equal(panels[1, 0, 2:], 0)

    def test_pack_b_layout(self):
        b = np.arange(24, dtype=np.float32).reshape(4, 6)  # kc=4, nc=6
        panels = pack_b_panels(b, nr=4)
        assert panels.shape == (2, 4, 4)
        np.testing.assert_array_equal(panels[0][:, 1], b[:, 1])
        np.testing.assert_array_equal(panels[1][:, 2:], 0)

    def test_c_tile_roundtrip(self):
        c = np.arange(30, dtype=np.float32).reshape(5, 6)
        tile = load_c_tile(c, 1, 2, mr=3, nr=4)
        assert tile.shape == (4, 3)
        c2 = c.copy()
        unpack_c_tile(c2, tile, 1, 2)
        np.testing.assert_array_equal(c, c2)

    def test_c_tile_edge_padding(self):
        c = np.ones((5, 5), dtype=np.float32)
        tile = load_c_tile(c, 4, 4, mr=4, nr=4)
        assert tile[0, 0] == 1.0
        np.testing.assert_array_equal(tile[1:, :], 0)
        np.testing.assert_array_equal(tile[:, 1:], 0)

    @given(
        st.integers(1, 12),
        st.integers(1, 9),
        st.sampled_from([4, 8]),
    )
    @settings(max_examples=25, deadline=None)
    def test_pack_a_preserves_values(self, mc, kc, mr):
        rng = np.random.default_rng(mc * 100 + kc)
        a = rng.random((mc, kc), dtype=np.float32)
        panels = pack_a_panels(a, mr)
        for q in range(panels.shape[0]):
            rows = min(mr, mc - q * mr)
            np.testing.assert_array_equal(
                panels[q, :, :rows], a[q * mr : q * mr + rows, :].T
            )


class TestBlisGemmDriver:
    @pytest.fixture(scope="class")
    def engine(self, registry):
        kernels = registry.family(
            ((8, 12), (8, 8), (8, 4), (4, 12), (4, 8), (4, 4), (1, 12), (1, 8), (1, 4))
        )
        # tiny tiles so small tests exercise all five loops
        return BlisGemm(kernels, tiles=TileParams(mc=16, kc=8, nc=24, mr=8, nr=12))

    def _check(self, engine, m, n, k, seed=0):
        rng = np.random.default_rng(seed)
        a = rng.random((m, k), dtype=np.float32)
        b = rng.random((k, n), dtype=np.float32)
        c = rng.random((m, n), dtype=np.float32)
        expected = naive_gemm(a, b, c.copy())
        engine(a, b, c)
        np.testing.assert_allclose(c, expected, rtol=1e-4, atol=1e-4)

    def test_exact_tile_multiple(self, engine):
        self._check(engine, 16, 24, 8)

    def test_multiple_cache_blocks(self, engine):
        self._check(engine, 32, 48, 20)

    def test_ragged_everything(self, engine):
        self._check(engine, 49, 26, 13)

    def test_single_row(self, engine):
        self._check(engine, 1, 12, 5)

    def test_tall_skinny(self, engine):
        self._check(engine, 40, 4, 7)

    def test_short_wide(self, engine):
        self._check(engine, 4, 50, 9)

    @given(
        st.integers(1, 30),
        st.integers(1, 30),
        st.integers(1, 12),
    )
    @settings(max_examples=15, deadline=None)
    def test_any_shape(self, engine, m, n, k):
        self._check(engine, m, n, k, seed=m * 1000 + n * 10 + k)

    def test_m_chunks_prefer_large_kernels(self, engine):
        assert engine.m_chunks(49) == [8] * 6 + [1]
        assert engine.m_chunks(8) == [8]
        assert engine.m_chunks(3) == [1, 1, 1]

    def test_n_chunks(self, engine):
        assert engine.n_chunks(64) == [12, 12, 12, 12, 12, 4]
        assert engine.n_chunks(12) == [12]

    def test_monolithic_kernel_pads_edges(self, registry):
        """With only the 8x12 kernel available, ragged shapes still compute
        correctly through zero-padded tiles (the BLIS monolithic strategy)."""
        engine = BlisGemm({(8, 12): registry.get(8, 12)})
        rng = np.random.default_rng(5)
        a = rng.random((9, 4), dtype=np.float32)
        b = rng.random((4, 13), dtype=np.float32)
        c = rng.random((9, 13), dtype=np.float32)
        expected = naive_gemm(a, b, c.copy())
        engine(a, b, c)
        np.testing.assert_allclose(c, expected, rtol=1e-4, atol=1e-4)

    def test_shape_mismatch_rejected(self, engine):
        with pytest.raises(ValueError, match="mismatch"):
            engine(
                np.ones((4, 5), dtype=np.float32),
                np.ones((6, 7), dtype=np.float32),
                np.zeros((4, 7), dtype=np.float32),
            )
