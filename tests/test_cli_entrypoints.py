"""Console entry points: every CLI answers ``--help`` with exit 0.

``pyproject.toml`` declares ``repro-eval`` / ``repro-tune`` /
``repro-serve`` / ``repro-check`` console scripts; these tests pin the targets those
scripts resolve to, and that each ``main()`` handles ``--help`` cleanly
(argparse CLIs raise ``SystemExit(0)``, the hand-rolled eval CLI
returns 0).
"""

from __future__ import annotations

import importlib
from pathlib import Path

import pytest

ENTRY_POINTS = {
    "repro-eval": "repro.eval.__main__:main",
    "repro-tune": "repro.tune.__main__:main",
    "repro-serve": "repro.serve.__main__:main",
    "repro-check": "repro.analysis.__main__:main",
}


def _resolve(target: str):
    module, attr = target.split(":")
    return getattr(importlib.import_module(module), attr)


@pytest.mark.parametrize("script", sorted(ENTRY_POINTS))
def test_help_exits_zero(script, capsys):
    main = _resolve(ENTRY_POINTS[script])
    try:
        code = main(["--help"])
    except SystemExit as exc:
        code = exc.code or 0
    assert code == 0
    out = capsys.readouterr().out
    assert "usage" in out.lower()


@pytest.mark.parametrize("script", sorted(ENTRY_POINTS))
def test_entry_point_targets_resolve(script):
    assert callable(_resolve(ENTRY_POINTS[script]))


def test_pyproject_declares_console_scripts():
    text = (Path(__file__).parent.parent / "pyproject.toml").read_text()
    for script, target in ENTRY_POINTS.items():
        assert f'{script} = "{target}"' in text
