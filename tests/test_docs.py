"""Documentation health: the link checker, run as part of tier-1.

``tools/check_doc_links.py`` verifies that every relative markdown
link in README.md and docs/ resolves to a real file; CI runs the
script directly and this test keeps the same gate in the tier-1
suite (plus unit coverage of the checker itself, so a regression in
the tool cannot silently pass broken docs).
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_doc_links", REPO / "tools" / "check_doc_links.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


checker = _load_checker()


def test_repo_docs_have_no_broken_links(capsys):
    code = checker.main([str(REPO / "README.md"), str(REPO / "docs")])
    out = capsys.readouterr().out
    assert code == 0, f"broken documentation links:\n{out}"


def test_readme_links_every_docs_page():
    readme = (REPO / "README.md").read_text()
    for page in sorted((REPO / "docs").glob("*.md")):
        assert f"docs/{page.name}" in readme, (
            f"README.md documentation map is missing docs/{page.name}"
        )


def test_index_links_every_other_docs_page():
    index = (REPO / "docs" / "index.md").read_text()
    for page in sorted((REPO / "docs").glob("*.md")):
        if page.name == "index.md":
            continue
        assert page.name in index, (
            f"docs/index.md does not reference {page.name}"
        )


def test_checker_flags_a_broken_link(tmp_path, capsys):
    bad = tmp_path / "bad.md"
    bad.write_text("see [missing](nope.md) and [ok](ok.md)\n")
    (tmp_path / "ok.md").write_text("fine\n")
    code = checker.main([str(bad)])
    out = capsys.readouterr().out
    assert code == 1
    assert "nope.md" in out
    assert "ok.md" not in out.replace("nope.md", "")


def test_checker_ignores_external_fragment_and_fenced_links(
    tmp_path, capsys
):
    page = tmp_path / "page.md"
    page.write_text(
        "[web](https://example.com) [frag](#section)\n"
        "```\n[fake](inside/a/code/fence.md)\n```\n"
    )
    assert checker.main([str(page)]) == 0
    capsys.readouterr()


def test_checker_accepts_anchored_relative_links(tmp_path):
    (tmp_path / "other.md").write_text("# t\n")
    page = tmp_path / "page.md"
    page.write_text("[sec](other.md#t)\n")
    assert checker.main([str(page)]) == 0


def test_checker_errors_on_missing_root(capsys):
    assert checker.main([str(REPO / "no-such-dir")]) == 1
    assert "no such path" in capsys.readouterr().out


def test_roadmap_names_no_nonexistent_paths():
    """ROADMAP/SNIPPETS must only point at paths that exist."""
    for name in ("ROADMAP.md", "SNIPPETS.md", "README.md"):
        text = (REPO / name).read_text()
        assert "/root/related" not in text, (
            f"{name} references the non-existent /root/related/ file set"
        )
