"""Documentation health: the link checker, run as part of tier-1.

``tools/check_doc_links.py`` verifies that every relative markdown
link in README.md and docs/ resolves to a real file and that every
``#fragment`` names a real heading of its target page; CI runs the
script directly and this test keeps the same gate in the tier-1
suite (plus unit coverage of the checker itself, so a regression in
the tool cannot silently pass broken docs).
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_doc_links", REPO / "tools" / "check_doc_links.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


checker = _load_checker()


def test_repo_docs_have_no_broken_links(capsys):
    code = checker.main([str(REPO / "README.md"), str(REPO / "docs")])
    out = capsys.readouterr().out
    assert code == 0, f"broken documentation links:\n{out}"


def test_readme_links_every_docs_page():
    readme = (REPO / "README.md").read_text()
    for page in sorted((REPO / "docs").glob("*.md")):
        assert f"docs/{page.name}" in readme, (
            f"README.md documentation map is missing docs/{page.name}"
        )


def test_index_links_every_other_docs_page():
    index = (REPO / "docs" / "index.md").read_text()
    for page in sorted((REPO / "docs").glob("*.md")):
        if page.name == "index.md":
            continue
        assert page.name in index, (
            f"docs/index.md does not reference {page.name}"
        )


def test_checker_flags_a_broken_link(tmp_path, capsys):
    bad = tmp_path / "bad.md"
    bad.write_text("see [missing](nope.md) and [ok](ok.md)\n")
    (tmp_path / "ok.md").write_text("fine\n")
    code = checker.main([str(bad)])
    out = capsys.readouterr().out
    assert code == 1
    assert "nope.md" in out
    assert "ok.md" not in out.replace("nope.md", "")


def test_checker_ignores_external_and_fenced_links(tmp_path, capsys):
    page = tmp_path / "page.md"
    page.write_text(
        "# Section\n"
        "[web](https://example.com) [frag](#section)\n"
        "```\n[fake](inside/a/code/fence.md)\n```\n"
    )
    assert checker.main([str(page)]) == 0
    capsys.readouterr()


def test_checker_accepts_anchored_relative_links(tmp_path):
    (tmp_path / "other.md").write_text("# t\n")
    page = tmp_path / "page.md"
    page.write_text("[sec](other.md#t)\n")
    assert checker.main([str(page)]) == 0


def test_slugify_matches_github_rules():
    assert checker.slugify("Plain Title") == "plain-title"
    assert checker.slugify("What `repro-check` does") == (
        "what-repro-check-does"
    )
    assert checker.slugify("tune & serve: a) b)") == "tune--serve-a-b"
    # inline links contribute only their visible text
    assert checker.slugify("See [the guide](guide.md) now") == (
        "see-the-guide-now"
    )


def test_heading_anchors_dedup_and_fence_skip(tmp_path):
    page = tmp_path / "page.md"
    page.write_text(
        "# Setup\n"
        "## Setup\n"
        "```\n# Not A Heading\n```\n"
        "## Tear down\n"
    )
    assert checker.heading_anchors(page) == {
        "setup",
        "setup-1",
        "tear-down",
    }


def test_checker_flags_broken_in_page_anchor(tmp_path, capsys):
    page = tmp_path / "page.md"
    page.write_text("# Present\n[gone](#absent)\n")
    assert checker.main([str(page)]) == 1
    assert "#absent" in capsys.readouterr().out


def test_checker_flags_broken_cross_file_anchor(tmp_path, capsys):
    (tmp_path / "other.md").write_text("# Real Section\n")
    page = tmp_path / "page.md"
    page.write_text(
        "[ok](other.md#real-section) [bad](other.md#fake-section)\n"
    )
    assert checker.main([str(page)]) == 1
    out = capsys.readouterr().out
    assert "other.md#fake-section" in out
    assert "other.md#real-section" not in out


def test_checker_skips_anchor_check_on_non_markdown(tmp_path):
    """#fragments into non-markdown targets (source files) pass."""
    (tmp_path / "tool.py").write_text("print('hi')\n")
    page = tmp_path / "page.md"
    page.write_text("[line](tool.py#L1)\n")
    assert checker.main([str(page)]) == 0


def test_checker_errors_on_missing_root(capsys):
    assert checker.main([str(REPO / "no-such-dir")]) == 1
    assert "no such path" in capsys.readouterr().out


def test_roadmap_names_no_nonexistent_paths():
    """ROADMAP/SNIPPETS must only point at paths that exist."""
    for name in ("ROADMAP.md", "SNIPPETS.md", "README.md"):
        text = (REPO / name).read_text()
        assert "/root/related" not in text, (
            f"{name} references the non-existent /root/related/ file set"
        )
