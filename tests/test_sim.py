"""Tests for the performance simulation substrate.

These check the *mechanisms* the reproduction relies on: FMA-latency hiding
by accumulator count, vector-slot contention, cache behaviour of packed vs
strided access, and the composition rules of the timing model.
"""

from __future__ import annotations

import pytest

from repro.isa.machine import CARMEL, GENERIC_ARM
from repro.sim.cache import Cache, hierarchy_for
from repro.sim.memory import GemmShape, TileParams, memory_cost
from repro.sim.pipeline import PipelineModel, trace_from_kernel
from repro.sim.timing import ChunkPlan, gemm_time_model, solo_kernel_gflops


@pytest.fixture(scope="module")
def pm():
    return PipelineModel()


class TestPipelineMechanisms:
    def test_8x12_near_but_below_peak(self, registry, pm):
        trace = trace_from_kernel(registry.get(8, 12))
        cyc = pm.steady_cycles_per_iter(trace)
        flops_per_cycle = trace.flops_per_iter / cyc
        peak = CARMEL.peak_gflops() / CARMEL.freq_ghz  # 16 flops/cycle
        assert 0.75 * peak < flops_per_cycle < peak

    def test_vector_slot_contention(self, registry, pm):
        """24 FMAs + 5 loads through 2 vector slots: 14.5 cycles/iter."""
        trace = trace_from_kernel(registry.get(8, 12))
        assert pm.steady_cycles_per_iter(trace) == pytest.approx(14.5, abs=0.1)

    def test_small_tile_latency_bound(self, registry, pm):
        """4x4 has 4 accumulator chains of latency-4 FMAs: 4 cycles/iter,
        not the 3 cycles resources alone would allow."""
        trace = trace_from_kernel(registry.get(4, 4))
        assert pm.steady_cycles_per_iter(trace) == pytest.approx(4.0, abs=0.1)

    def test_throughput_monotone_in_tile_size(self, registry, pm):
        rates = []
        for shape in [(4, 4), (8, 4), (8, 8), (8, 12)]:
            trace = trace_from_kernel(registry.get(*shape))
            cyc = pm.steady_cycles_per_iter(trace)
            rates.append(trace.flops_per_iter / cyc)
        assert rates == sorted(rates)

    def test_extra_alu_ops_do_not_disturb_vector_bound(self, registry, pm):
        base = trace_from_kernel(registry.get(8, 12))
        loaded = trace_from_kernel(registry.get(8, 12), extra_alu_per_iter=4)
        assert pm.steady_cycles_per_iter(loaded) == pytest.approx(
            pm.steady_cycles_per_iter(base), abs=0.2
        )

    def test_narrow_machine_is_slower(self, registry):
        trace = trace_from_kernel(registry.get(8, 12))
        fast = PipelineModel(machine=CARMEL).steady_cycles_per_iter(trace)
        slow = PipelineModel(machine=GENERIC_ARM).steady_cycles_per_iter(trace)
        assert slow > 1.5 * fast

    def test_trace_counts(self, registry):
        trace = trace_from_kernel(registry.get(8, 12))
        counts = trace.counts()
        assert counts["fma"] == 24
        assert counts["load"] == 5
        assert trace.prologue_vector_ops == 24
        assert trace.epilogue_vector_ops == 24


class TestSoloTiming:
    def test_kc_amortizes_tile_transfers(self, registry):
        trace = trace_from_kernel(registry.get(8, 12))
        short = solo_kernel_gflops(trace, 8, 12, kc=32)
        long = solo_kernel_gflops(trace, 8, 12, kc=512)
        assert long > short

    def test_useful_fraction_scales_gflops(self, registry):
        trace = trace_from_kernel(registry.get(8, 12))
        full = solo_kernel_gflops(trace, 8, 12, kc=512)
        quarter = solo_kernel_gflops(
            trace, 8, 12, kc=512, useful_mr=4, useful_nr=6
        )
        assert quarter == pytest.approx(full / 4, rel=1e-6)


class TestCacheSimulator:
    def test_lru_eviction(self):
        cache = Cache(size_bytes=4 * 64, line_bytes=64, assoc=2)
        # two sets; fill set 0 with lines 0 and 2, then touch 4 -> evict 0
        cache.access(0)
        cache.access(2 * 64)
        cache.access(0)  # 0 now MRU
        cache.access(4 * 64)  # evicts line 2
        assert cache.access(0)
        assert not cache.access(2 * 64)

    def test_hit_rate_accounting(self):
        cache = Cache(size_bytes=1024, line_bytes=64, assoc=4)
        for _ in range(10):
            cache.access(0)
        assert cache.stats.hits == 9
        assert cache.stats.accesses == 10

    def test_sequential_within_line_hits(self):
        cache = Cache(size_bytes=1024, line_bytes=64, assoc=4)
        misses = cache.access_range(0, 256)
        assert misses == 4  # one per line

    def test_hierarchy_fills_down(self):
        hier = hierarchy_for(CARMEL)
        assert hier.access(0) == 3  # memory
        assert hier.access(0) == 0  # L1 now

    def test_packed_panel_beats_strided_walk(self):
        """The point of packing: unit-stride panels reuse cache lines."""
        packed = Cache(size_bytes=32 * 1024, line_bytes=64, assoc=4)
        strided = Cache(size_bytes=32 * 1024, line_bytes=64, assoc=4)
        ldb = 2048 * 4  # walking a column of a 2048-wide f32 matrix
        for i in range(512):
            packed.access(i * 4)
            strided.access(i * ldb)
        assert packed.stats.hit_rate > 0.9
        assert strided.stats.hit_rate < 0.1

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            Cache(size_bytes=1000, line_bytes=64, assoc=3)


class TestMemoryModel:
    TILES = TileParams(mc=896, kc=512, nc=1788, mr=8, nr=12)

    def test_prefetch_removes_stall(self):
        shape = GemmShape(1000, 1000, 1000)
        no_pf = memory_cost(shape, self.TILES, prefetch_c=False)
        pf = memory_cost(shape, self.TILES, prefetch_c=True)
        assert no_pf.c_stall_cycles > 0
        assert pf.c_stall_cycles == 0
        assert pf.pack_a_cycles == no_pf.pack_a_cycles

    def test_a_repacked_per_jc_iteration(self):
        tiles = self.TILES
        small = memory_cost(GemmShape(500, tiles.nc, 500), tiles)
        big = memory_cost(GemmShape(500, 2 * tiles.nc, 500), tiles)
        # n spanning two jc iterations repacks the whole A a second time
        assert big.pack_a_cycles == pytest.approx(2 * small.pack_a_cycles)
        assert big.pack_b_cycles == pytest.approx(2 * small.pack_b_cycles)

    def test_c_traffic_scales_with_k_passes(self):
        tiles = self.TILES
        one_pass = memory_cost(GemmShape(1000, 1000, tiles.kc), tiles)
        two_pass = memory_cost(GemmShape(1000, 1000, 2 * tiles.kc), tiles)
        assert two_pass.c_stream_cycles == pytest.approx(
            2 * one_pass.c_stream_cycles
        )


class TestGemmTimeModel:
    def test_compute_dominates_large_square(self, registry):
        trace = trace_from_kernel(registry.get(8, 12))
        shape = GemmShape(2000, 2000, 2000)
        tiles = TileParams(mc=896, kc=512, nc=1788, mr=8, nr=12)
        plan = ChunkPlan(trace=trace, mr=8, nr=12, count=(2000 // 8) * (2000 // 12 + 1))
        b = gemm_time_model(shape, [plan], tiles)
        assert b.compute_cycles > b.pack_cycles
        assert b.gflops < CARMEL.peak_gflops()

    def test_gflops_and_seconds_consistent(self, registry):
        trace = trace_from_kernel(registry.get(8, 12))
        shape = GemmShape(1000, 996, 512)
        tiles = TileParams(mc=896, kc=512, nc=1788, mr=8, nr=12)
        plan = ChunkPlan(trace=trace, mr=8, nr=12, count=125 * 83)
        b = gemm_time_model(shape, [plan], tiles)
        assert b.gflops == pytest.approx(
            shape.flops / b.seconds / 1e9, rel=1e-9
        )
