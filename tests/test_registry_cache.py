"""Cache semantics of the per-machine kernel registries.

Two machines tagged with the same ``isa`` must share one registry (and
so one set of generated kernels); distinct ISAs must be isolated; and
the historical Neon process-wide default registry must never be touched
by a run on another backend.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.isa.machine import CARMEL, RVV_EDGE_VLEN128, RVV_SERVER_VLEN256
from repro.ukernel import registry as reg


@pytest.fixture()
def clean_registries(monkeypatch):
    """Fresh registry globals; the session-wide ones restore on teardown."""
    monkeypatch.setattr(reg, "_default_registry", None)
    monkeypatch.setattr(reg, "_machine_registries", {})


class TestRegistryForMachine:
    def test_same_isa_shares_one_registry(self, clean_registries):
        twin = dataclasses.replace(
            RVV_EDGE_VLEN128, name="another VLEN=128 core"
        )
        assert twin is not RVV_EDGE_VLEN128
        r1 = reg.registry_for_machine(RVV_EDGE_VLEN128)
        r2 = reg.registry_for_machine(twin)
        assert r1 is r2
        r1.get(1, 4)
        assert (1, 4) in r2

    def test_distinct_isas_are_isolated(self, clean_registries):
        r128 = reg.registry_for_machine(RVV_EDGE_VLEN128)
        r256 = reg.registry_for_machine(RVV_SERVER_VLEN256)
        assert r128 is not r256
        assert r128.lib["lanes"] == 4
        assert r256.lib["lanes"] == 8
        r128.get(4, 4)
        assert (4, 4) in r128
        assert (4, 4) not in r256

    def test_rvv_run_never_populates_neon_default(self, clean_registries):
        reg.registry_for_machine(RVV_EDGE_VLEN128).get(1, 4)
        # the Neon default registry was neither created nor populated
        assert reg._default_registry is None

    def test_neon_machine_reuses_the_default_registry(self, clean_registries):
        r = reg.registry_for_machine(CARMEL)
        assert r is reg.default_registry()
        assert r.lib["lanes"] == 4

    def test_repeated_lookups_are_memoized(self, clean_registries):
        r1 = reg.registry_for_machine(RVV_SERVER_VLEN256)
        r2 = reg.registry_for_machine(RVV_SERVER_VLEN256)
        assert r1 is r2
        assert reg._machine_registries == {"rvv256": r1}
