"""Tests for the RISC-V Vector backend: library, generation, VLA tails,
codegen, simulation, and the cross-ISA parity grid.

RVV is the vector-length-agnostic stress test of the retargeting story:
the library is *generated* per (VLEN, AVL), the broadcast schedule fuses
the splat into ``vfmacc.vf``, and ragged MR tiles run the same
instructions with ``vsetvl`` narrowed to the tail.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.blis.reference import naive_gemm
from repro.isa.machine import (
    MACHINES,
    RVV_EDGE_VLEN128,
    RVV_SERVER_VLEN256,
    machine_by_name,
)
from repro.isa.rvv import (
    RVV128_F32_LIB,
    RVV256_F32_LIB,
    make_rvv_f32_lib,
    rvv_lib_factory,
)
from repro.isa.targets import ISA_TARGETS, family_for_lanes, target
from repro.ukernel.generator import (
    generate_microkernel,
    generate_vla_microkernel,
    make_reference_kernel,
)
from repro.ukernel.registry import (
    DEFAULT_FAMILY,
    registry_for_machine,
    select_kernel_for,
)


def run_and_check(kernel, kc=7, seed=0):
    """Interpret a generated kernel and compare against the float64 oracle
    and, bit-for-bit, against the interpreted reference kernel."""
    rng = np.random.default_rng(seed)
    ac = rng.random((kc, kernel.mr)).astype(np.float32)
    bc = rng.random((kc, kernel.nr)).astype(np.float32)
    c0 = rng.random((kernel.nr, kernel.mr)).astype(np.float32)

    got = c0.copy()
    kernel.proc.interpret(kc, ac, bc, got)

    oracle = naive_gemm(ac.T.copy(), bc, c0.T.copy()).T
    np.testing.assert_allclose(got, oracle, rtol=1e-5, atol=1e-5)

    ref = make_reference_kernel().partial_eval(kernel.mr, kernel.nr)
    exact = c0.copy()
    ref.interpret(kc, ac, bc, exact)
    np.testing.assert_array_equal(got, exact)


class TestRvvLibrary:
    def test_library_slots(self):
        for lib in (RVV128_F32_LIB, RVV256_F32_LIB):
            for slot in ("load", "store", "fma", "fma_vf", "broadcast",
                         "zero", "mul", "add"):
                assert lib[slot] is not None
            assert lib["fmla_lane"] is None
            assert lib["vla"] is True

    def test_lanes_follow_vlen(self):
        assert RVV128_F32_LIB["lanes"] == 4
        assert RVV256_F32_LIB["lanes"] == 8
        assert make_rvv_f32_lib(512)["lanes"] == 16

    def test_avl_narrows_lanes(self):
        tail = make_rvv_f32_lib(128, avl=3)
        assert tail["lanes"] == 3
        assert tail["memory"].vlen_bits == 128
        assert tail["memory"].reg_bits == 96

    def test_libs_are_memoized(self):
        kwargs = dict(load_latency=4, fma_latency=6)
        assert make_rvv_f32_lib(128, **kwargs) is RVV128_F32_LIB
        assert make_rvv_f32_lib(128, avl=4, **kwargs) is RVV128_F32_LIB

    def test_instruction_semantics(self):
        lib = RVV128_F32_LIB
        dst = np.zeros(4, dtype=np.float32)
        src = np.arange(4, dtype=np.float32)
        lib["load"].interpret(dst, src)
        np.testing.assert_array_equal(dst, src)
        acc = np.ones(4, dtype=np.float32)
        scalar = np.array([3.0], dtype=np.float32)
        lib["fma_vf"].interpret(acc, src, scalar)
        np.testing.assert_allclose(acc, 1 + src * 3)

    def test_instr_metadata(self):
        info = RVV128_F32_LIB["fma_vf"].ir.instr
        assert info.pipe == "fma"
        assert info.latency == 6
        assert "vfmacc_vf_f32m1" in info.c_instr
        assert "{vl}" in info.c_instr

    def test_bad_avl_rejected(self):
        with pytest.raises(ValueError, match="AVL"):
            make_rvv_f32_lib(128, avl=5)


class TestRvvGeneration:
    @pytest.mark.parametrize(
        "vlen,mr,nr",
        [
            (128, 8, 12),
            (128, 8, 8),
            (128, 4, 12),
            (128, 4, 4),
            (128, 1, 12),
            (256, 8, 24),
            (256, 16, 24),
            (256, 8, 16),
            (256, 8, 8),
            (256, 1, 8),
        ],
    )
    def test_family_semantics(self, vlen, mr, nr):
        lib = make_rvv_f32_lib(vlen)
        kernel = generate_microkernel(mr, nr, lib)
        run_and_check(kernel)

    def test_broadcast_is_fused(self):
        kernel = generate_microkernel(8, 12, RVV128_F32_LIB)
        text = str(kernel.proc)
        assert kernel.variant == "broadcast"
        assert "vfmacc_vf" in text
        assert "B_reg" not in text  # splat fused into the FMA

    def test_row_variant_uses_splat(self):
        kernel = generate_microkernel(1, 12, RVV128_F32_LIB)
        assert kernel.variant == "row"
        assert "vfmv_v_f" in str(kernel.proc)

    def test_packed_variant_rejected(self):
        with pytest.raises(ValueError, match="lane"):
            generate_microkernel(8, 12, RVV128_F32_LIB, variant="packed")


class TestVlaTails:
    @pytest.mark.parametrize("mr", [7, 6, 5, 3, 2, 11])
    def test_ragged_mr_exact(self, mr):
        plan = generate_vla_microkernel(mr, 12, rvv_lib_factory(128))
        assert plan.mr == mr
        assert sum(k.mr for _, k in plan.parts) == mr
        kc = 5
        rng = np.random.default_rng(1)
        ac = rng.random((kc, mr), dtype=np.float32)
        bc = rng.random((kc, 12), dtype=np.float32)
        c = rng.random((12, mr)).astype(np.float32)
        oracle = naive_gemm(ac.T.copy(), bc, c.T.copy()).T
        plan.interpret(kc, ac, bc, c)
        np.testing.assert_allclose(c, oracle, rtol=1e-5, atol=1e-5)

    def test_tail_kernel_narrowed(self):
        plan = generate_vla_microkernel(7, 12, rvv_lib_factory(128))
        assert plan.tail is not None
        assert plan.tail.mr == 3
        assert plan.tail.lanes == 3
        assert "vl3" in plan.tail.proc.c_code()

    def test_lane_multiple_has_no_tail(self):
        plan = generate_vla_microkernel(8, 12, rvv_lib_factory(128))
        assert plan.tail is None
        assert len(plan.parts) == 1

    def test_sub_lane_tile_is_single_tail(self):
        plan = generate_vla_microkernel(2, 8, rvv_lib_factory(256))
        assert len(plan.parts) == 1
        assert plan.parts[0][1].lanes == 2


class TestRvvCodegen:
    @pytest.fixture(scope="class")
    def c_code(self):
        return generate_microkernel(8, 12, RVV128_F32_LIB).proc.c_code()

    def test_header_and_prelude(self, c_code):
        assert "#include <riscv_vector.h>" in c_code
        assert "const size_t vl4 = __riscv_vsetvl_e32m1(4);" in c_code

    def test_vector_type_and_intrinsics(self, c_code):
        assert "vfloat32m1_t C_reg[12][2];" in c_code
        assert "__riscv_vle32_v_f32m1(&" in c_code
        assert "__riscv_vse32_v_f32m1(&" in c_code
        assert "__riscv_vfmacc_vf_f32m1(" in c_code

    def test_vl_threaded_through_calls(self, c_code):
        # every RVV intrinsic call carries the vsetvl result
        for line in c_code.splitlines():
            if "__riscv_v" in line and "vsetvl" not in line:
                assert "vl4" in line, line

    def test_vlen256_distinct_vl(self):
        code = generate_microkernel(8, 16, RVV256_F32_LIB).proc.c_code()
        assert "__riscv_vsetvl_e32m1(8)" in code

    def test_golden_kloop(self):
        """The fused k-loop: unrolled A loads, FMA in the j/it nest, and —
        the fusion payoff — no splat instruction anywhere in the loop."""
        code = generate_microkernel(8, 12, RVV128_F32_LIB).proc.c_code()
        kloop = code[code.index("for (int_fast32_t k = 0") :]
        assert kloop.count("__riscv_vle32_v_f32m1") == 2  # A loads, unrolled
        assert kloop.count("__riscv_vfmacc_vf_f32m1") == 1  # in the j x it nest
        assert "__riscv_vfmv_v_f_f32m1" not in kloop

    def test_trace_op_counts(self):
        """Per-iteration trace: 24 FMAs + 2 loads — one vector op fewer
        per j step than a splat+vv pair would need (Figure-12 analogue)."""
        from repro.sim.pipeline import trace_from_kernel

        kernel = generate_microkernel(8, 12, RVV128_F32_LIB)
        counts = trace_from_kernel(kernel).counts()
        assert counts["fma"] == 24
        assert counts["load"] == 2
        assert "store" not in counts


class TestRvvSimulation:
    def test_edge_core_respects_chime(self):
        from repro.sim.pipeline import PipelineModel, trace_from_kernel

        kernel = generate_microkernel(8, 12, RVV128_F32_LIB)
        trace = trace_from_kernel(kernel)
        cycles = PipelineModel(machine=RVV_EDGE_VLEN128).steady_cycles_per_iter(
            trace
        )
        # 26 vector ops x 2 chimes on one pipe: at least 52 cycles/iter
        assert cycles >= 2 * sum(
            1 for op in trace.ops if op.pipe in ("fma", "load", "store")
        )

    def test_peak_derated_by_chime(self):
        assert RVV_EDGE_VLEN128.peak_gflops() == pytest.approx(6.4)
        assert RVV_SERVER_VLEN256.peak_gflops() == pytest.approx(64.0)

    def test_solo_near_peak(self):
        from repro.eval.harness import machine_context, solo_sweep_data

        for machine in (RVV_EDGE_VLEN128, RVV_SERVER_VLEN256):
            ctx = machine_context(machine)
            mr, nr = ctx.main_tile
            row = solo_sweep_data(ctx, shapes=((mr, nr),))[0]
            assert 0.70 <= row["peak_frac"] <= 1.0

    def test_analytical_tiles_without_l3(self):
        from repro.blis.params import analytical_tile_params

        tiles = analytical_tile_params(8, 12, RVV_EDGE_VLEN128)
        assert tiles.kc >= 32
        assert tiles.mc % 8 == 0
        assert tiles.nc == 4092  # 4096 rounded down to nr=12

    def test_selection_on_rvv(self):
        shape, breakdown = select_kernel_for(
            96, 96, 96, machine=RVV_SERVER_VLEN256
        )
        assert shape in registry_for_machine(RVV_SERVER_VLEN256).family_shapes
        assert breakdown.gflops > 0

    def test_gemm_model_uses_vla_exact_cover(self):
        """Ragged GEMM shapes on RVV go through the vsetvl tail path."""
        from repro.eval.harness import exo_gemm_breakdown, machine_context

        ctx = machine_context(RVV_EDGE_VLEN128)
        for m, n in ((50, 70), (3, 12), (49, 500)):
            b = exo_gemm_breakdown(m, n, 64, ctx=ctx)
            assert b.gflops > 0
        # the ragged part traces are cached under VLA keys
        assert any(
            isinstance(k, tuple) and k and k[0] == "vla"
            for k in ctx._exo_traces
        )


class TestTargetsRegistry:
    def test_builtin_targets_present(self):
        for name in ("neon", "avx512", "rvv128", "rvv256"):
            assert name in ISA_TARGETS

    def test_family_matches_lanes(self):
        assert target("neon").family == DEFAULT_FAMILY
        assert family_for_lanes(4) == DEFAULT_FAMILY
        # wider ISAs shed the tallest tiles to stay inside 32 registers
        assert target("rvv256").family[0] == (8, 24)

    def test_families_fit_register_file(self):
        from repro.isa.targets import _tile_registers

        for name, t in ISA_TARGETS.items():
            lanes = t.lib["lanes"]
            for mr, nr in t.family:
                regs = _tile_registers(mr, nr, lanes)
                assert regs <= t.machine.vector_registers, (
                    f"{name} tile {mr}x{nr} needs {regs} registers"
                )

    def test_machine_registry(self):
        assert machine_by_name("rvv128") is RVV_EDGE_VLEN128
        assert MACHINES["rvv256"] is RVV_SERVER_VLEN256
        with pytest.raises(KeyError, match="unknown machine"):
            machine_by_name("z80")

    def test_registry_shares_kernels_per_isa(self):
        r1 = registry_for_machine(RVV_EDGE_VLEN128)
        r2 = registry_for_machine(RVV_EDGE_VLEN128)
        assert r1 is r2
        assert r1.lib["lanes"] == 4


# ---------------------------------------------------------------------------
# Cross-ISA parity: every backend, same numbers
# ---------------------------------------------------------------------------

_PARITY_SHAPES = [(8, 12), (4, 8), (1, 12)]


def _parity_cases():
    cases = []
    for name in sorted(ISA_TARGETS):
        t = ISA_TARGETS[name]
        lanes = t.lib["lanes"]
        for mr, nr in _PARITY_SHAPES:
            # scale the lanes=4 grid to the target's vector length
            mr_s = mr if mr == 1 else mr * lanes // 4
            nr_s = nr * lanes // 4
            cases.append(pytest.param(name, mr_s, nr_s,
                                      id=f"{name}-{mr_s}x{nr_s}"))
    return cases


class TestCrossIsaParity:
    @pytest.mark.parametrize("isa,mr,nr", _parity_cases())
    @pytest.mark.parametrize("kc", [1, 5, 16])
    def test_generated_kernel_matches_reference(self, isa, mr, nr, kc):
        kernel = generate_microkernel(mr, nr, target(isa).lib)
        run_and_check(kernel, kc=kc, seed=kc)

    @pytest.mark.smoke
    @pytest.mark.parametrize("isa", sorted(ISA_TARGETS))
    def test_smoke_one_kernel_per_isa(self, isa):
        t = target(isa)
        kernel = generate_microkernel(*t.main_tile, t.lib)
        run_and_check(kernel, kc=3)
