"""Shared test utilities.

The central tool is :func:`assert_equivalent`: run two procedures with the
same signature on identical random inputs through the reference interpreter
and compare every output buffer.  Every scheduling step in the generator
tests is validated this way — the empirical counterpart of Exo's formal
equivalence guarantee.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core import Procedure
from repro.core.typesys import TensorType


def random_args(
    proc: Procedure,
    sizes: Dict[str, int],
    seed: int = 0,
) -> Dict[str, object]:
    """Build a full argument dict for ``proc``: ints for size/index args,
    random arrays (matching declared shapes) for tensors."""
    from repro.core.interp import _eval_expr, _Frame

    rng = np.random.default_rng(seed)
    frame = _Frame()
    args: Dict[str, object] = {}
    for arg in proc.ir.args:
        name = arg.name.name
        if arg.type.is_indexable():
            if name not in sizes:
                raise KeyError(f"test must supply size {name!r}")
            args[name] = sizes[name]
            frame.set(arg.name, sizes[name])
    for arg in proc.ir.args:
        name = arg.name.name
        if isinstance(arg.type, TensorType):
            shape = tuple(
                int(_eval_expr(dim, frame)) for dim in arg.type.shape
            )
            data = rng.standard_normal(shape).astype(arg.type.base.np_dtype)
            args[name] = data
    return args


def run_with(proc: Procedure, args: Dict[str, object]) -> Dict[str, np.ndarray]:
    """Run ``proc`` on copies of ``args``; return the (mutated) arrays."""
    copied = {
        k: (v.copy() if isinstance(v, np.ndarray) else v)
        for k, v in args.items()
    }
    proc.interpret(**copied)
    return {
        k: v for k, v in copied.items() if isinstance(v, np.ndarray)
    }


def assert_equivalent(
    p1: Procedure,
    p2: Procedure,
    sizes: Dict[str, int],
    seed: int = 0,
    rtol: float = 1e-5,
    atol: float = 1e-5,
) -> None:
    """Both procedures must agree on random inputs (all output buffers)."""
    args = random_args(p1, sizes, seed=seed)
    out1 = run_with(p1, args)
    out2 = run_with(p2, args)
    assert out1.keys() == out2.keys()
    for name in out1:
        np.testing.assert_allclose(
            out1[name].astype(np.float64),
            out2[name].astype(np.float64),
            rtol=rtol,
            atol=atol,
            err_msg=f"buffer {name} diverged between "
            f"{p1.name()} and {p2.name()}",
        )
