"""Tests for the baseline kernel models and the kernel registry."""

from __future__ import annotations

import pytest

from repro.baselines.blis_asm import blis_kernel_model
from repro.baselines.neon_handwritten import neon_kernel_model
from repro.sim.pipeline import PipelineModel, trace_from_kernel
from repro.sim.timing import solo_kernel_gflops
from repro.ukernel.registry import (
    DEFAULT_FAMILY,
    KernelRegistry,
    select_kernel_for,
)


class TestBaselineModels:
    @pytest.fixture(scope="class")
    def traces(self, registry):
        kernel = registry.get(8, 12)
        return {
            "neon": neon_kernel_model(kernel=kernel),
            "blis": blis_kernel_model(kernel=kernel),
            "exo": trace_from_kernel(kernel),
        }

    def test_neon_carries_intrinsic_overhead(self, traces):
        assert len(traces["neon"].ops) == len(traces["exo"].ops) + 2

    def test_blis_matches_generated_stream(self, traces):
        """Figure 12's observation: the generated k-loop equals the BLIS
        assembly instruction for instruction."""
        assert len(traces["blis"].ops) == len(traces["exo"].ops)
        assert traces["blis"].counts() == traces["exo"].counts()

    def test_monolithic_kernels_pay_edge_logic(self, traces):
        assert traces["blis"].extra_call_cycles > 0
        assert traces["neon"].extra_call_cycles > 0
        assert traces["exo"].extra_call_cycles == 0

    def test_solo_ordering_neon_blis_exo(self, traces):
        """The paper's Figure 13 at 8x12: NEON < BLIS <= EXO."""
        neon = solo_kernel_gflops(traces["neon"], 8, 12)
        blis = solo_kernel_gflops(traces["blis"], 8, 12)
        exo = solo_kernel_gflops(traces["exo"], 8, 12, call_overhead=10.0)
        assert neon < blis <= exo

    def test_neon_penalty_is_single_digit_percent(self, traces):
        pm = PipelineModel()
        neon = pm.steady_cycles_per_iter(traces["neon"])
        blis = pm.steady_cycles_per_iter(traces["blis"])
        assert 1.0 < neon / blis < 1.12


class TestRegistry:
    def test_memoization(self):
        reg = KernelRegistry()
        k1 = reg.get(4, 4)
        k2 = reg.get(4, 4)
        assert k1 is k2
        assert (4, 4) in reg

    def test_family_contains_paper_kernels(self, registry):
        family = registry.family()
        for shape in [(8, 12), (8, 4), (4, 4), (4, 8), (4, 12), (1, 8), (1, 12)]:
            assert shape in family

    def test_default_family_closed_under_combinations(self):
        heights = {s[0] for s in DEFAULT_FAMILY}
        widths = {s[1] for s in DEFAULT_FAMILY}
        for h in heights:
            for w in widths:
                assert (h, w) in DEFAULT_FAMILY

    def test_select_kernel_returns_candidate(self, registry):
        shape, breakdown = select_kernel_for(512, 512, 512, registry=registry)
        assert shape in DEFAULT_FAMILY
        assert breakdown.total_cycles > 0

    def test_select_kernel_small_problem(self, registry):
        shape, _ = select_kernel_for(4, 8, 64, registry=registry)
        assert shape[0] <= 4 and shape[1] <= 8
