"""Tests for the offline trace analyzer (repro.obs.analyze).

The load-bearing invariants:

* the four critical-path stages — admission, queue wait, batch wait,
  service — sum to each request's latency **exactly**, with forming
  instants clamped into causal order;
* the analyzer reads both exporter formats (Chrome object JSON and the
  JSONL event log) and produces byte-identical reports from either;
* analyzing the same trace twice is byte-identical (no wall clock
  anywhere), which is what the CI obs-smoke ``cmp`` relies on;
* ``--diff`` attributes a latency delta to the stage that moved — a
  bigger batch window must show up as ``batch_wait_ms``;
* the CLI exits 0 on success, 2 on unreadable input or bad usage.
"""

from __future__ import annotations

import json

import pytest

from repro import obs as obslib
from repro.isa.machine import CARMEL
from repro.obs.analyze import (
    STAGES,
    analyze_events,
    analyze_trace,
    diff_analyses,
    load_trace_events,
    main,
    markdown_summary,
)
from repro.serve import (
    AdmissionPolicy,
    PoolSpec,
    ServePlane,
    VirtualTimeline,
    run_trace,
    synthetic_trace,
)


def _chain_events(
    request_id: int,
    arrive_ms: float,
    admit_ms: float,
    complete_ms: float,
    batch_id: str = "b1",
    model: str = "resnet50",
) -> list:
    """One admitted request's chain in raw trace-event form (ts in us)."""
    return [
        {
            "name": "arrive",
            "ph": "i",
            "ts": arrive_ms * 1e3,
            "pid": 0,
            "tid": 0,
            "args": {"request_id": request_id, "model": model},
        },
        {
            "name": "admit",
            "ph": "i",
            "ts": admit_ms * 1e3,
            "pid": 0,
            "tid": 0,
            "args": {"request_id": request_id},
        },
        {
            "name": "queued",
            "ph": "X",
            "ts": admit_ms * 1e3,
            "dur": (complete_ms - admit_ms) * 1e3,
            "pid": 0,
            "tid": 0,
            "args": {"request_id": request_id, "batch_id": batch_id},
        },
        {
            "name": "complete",
            "ph": "i",
            "ts": complete_ms * 1e3,
            "pid": 0,
            "tid": 0,
            "args": {"request_id": request_id, "batch_id": batch_id},
        },
    ]


def _batch_event(
    batch_id: str,
    dispatch_ms: float,
    service_ms: float,
    formed_ms=None,
    **extra,
) -> dict:
    event = {
        "name": "batch",
        "ph": "X",
        "ts": dispatch_ms * 1e3,
        "dur": service_ms * 1e3,
        "pid": 0,
        "tid": 1,
        "args": {"batch_id": batch_id, "size": 1, **extra},
    }
    if formed_ms is not None:
        event["args"]["formed_ms"] = formed_ms
    return event


class TestStageDecomposition:
    def test_stages_sum_to_latency_exactly(self):
        events = _chain_events(1, 0.0, 1.0, 9.0) + [
            _batch_event("b1", 5.0, 4.0, formed_ms=3.0)
        ]
        report = analyze_events(events)
        (row,) = report["slowest"]
        assert row["stages"]["admission_ms"] == pytest.approx(1.0)
        assert row["stages"]["queue_wait_ms"] == pytest.approx(2.0)
        assert row["stages"]["batch_wait_ms"] == pytest.approx(2.0)
        assert row["stages"]["service_ms"] == pytest.approx(4.0)
        assert sum(row["stages"].values()) == pytest.approx(
            row["latency_ms"]
        )

    def test_forming_instant_is_clamped_into_causal_order(self):
        # formed_ms before the admit instant: the whole pre-dispatch
        # span must land in batch wait, never a negative queue wait
        events = _chain_events(1, 0.0, 2.0, 9.0) + [
            _batch_event("b1", 5.0, 4.0, formed_ms=1.0)
        ]
        stages = analyze_events(events)["slowest"][0]["stages"]
        assert stages["queue_wait_ms"] == 0.0
        assert stages["batch_wait_ms"] == pytest.approx(3.0)
        assert sum(stages.values()) == pytest.approx(9.0)

    def test_missing_formed_ms_degrades_to_zero_batch_wait(self):
        events = _chain_events(1, 0.0, 1.0, 9.0) + [
            _batch_event("b1", 5.0, 4.0)
        ]
        stages = analyze_events(events)["slowest"][0]["stages"]
        assert stages["batch_wait_ms"] == 0.0
        assert stages["queue_wait_ms"] == pytest.approx(4.0)
        assert sum(stages.values()) == pytest.approx(9.0)

    def test_shed_requests_are_counted_not_decomposed(self):
        events = [
            {
                "name": "arrive",
                "ph": "i",
                "ts": 0.0,
                "pid": 0,
                "tid": 0,
                "args": {"request_id": 7, "model": "resnet50"},
            },
            {
                "name": "shed",
                "ph": "i",
                "ts": 100.0,
                "pid": 0,
                "tid": 0,
                "args": {"request_id": 7, "reason": "deadline"},
            },
        ]
        report = analyze_events(events)
        assert report["requests"] == {
            "seen": 1,
            "completed": 0,
            "shed": 1,
            "with_trace_id": 0,
        }
        assert report["sheds"]["reasons"] == {"deadline": 1}
        assert report["latency"]["mean_ms"] is None

    def test_per_layer_attribution_sums_and_sorts(self):
        events = _chain_events(1, 0.0, 0.0, 10.0) + [
            _batch_event(
                "b1", 2.0, 8.0, formed_ms=1.0,
                layers={"0": 6.0, "1": 2.0},
            )
        ]
        per_layer = analyze_events(events)["per_layer"]
        assert [row["layer"] for row in per_layer] == ["0", "1"]
        assert per_layer[0]["share"] == pytest.approx(0.75)

    def test_empty_trace_analyzes_without_error(self):
        report = analyze_events([])
        assert report["requests"]["seen"] == 0
        assert report["stages"]["service_ms"]["total_ms"] == 0.0
        md = markdown_summary(report)
        assert "0 completed" in md


class TestDiff:
    def _single_stage_report(self, batch_wait_ms: float) -> dict:
        dispatch = 1.0 + batch_wait_ms
        events = _chain_events(1, 0.0, 1.0, dispatch + 4.0) + [
            _batch_event("b1", dispatch, 4.0, formed_ms=1.0)
        ]
        return analyze_events(events)

    def test_delta_lands_on_the_stage_that_moved(self):
        fast = self._single_stage_report(batch_wait_ms=0.5)
        slow = self._single_stage_report(batch_wait_ms=3.5)
        diff = diff_analyses(fast, slow)
        assert diff["dominant_stage"] == "batch_wait_ms"
        assert diff["delta"]["stage_mean_ms"]["batch_wait_ms"] == (
            pytest.approx(3.0)
        )
        assert diff["delta"]["mean_latency_ms"] == pytest.approx(3.0)
        assert diff["delta"]["stage_mean_ms"]["service_ms"] == (
            pytest.approx(0.0)
        )

    def test_markdown_renders_the_diff_block(self):
        fast = self._single_stage_report(0.5)
        slow = self._single_stage_report(3.5)
        md = markdown_summary(fast, diff_analyses(fast, slow))
        assert "## Diff" in md
        assert "**batch_wait_ms**" in md


def _traced_plane_run(max_batch: int = 4, rate: float = 40.0):
    """One deterministic mock-controller run with tracing enabled."""
    obs = obslib.Obs(tracer=obslib.Tracer(clock=obslib.VirtualClock()))
    plane = ServePlane(
        CARMEL,
        [PoolSpec("resnet50", 2, 4, max_batch=max_batch, max_wait_ms=4.0)],
        VirtualTimeline(),
        controller="mock",
        admission=AdmissionPolicy(),
        obs=obs,
        mock_service_ms=3.0,
    )
    trace = synthetic_trace(rate, 800.0, seed=11)
    arrivals = [("resnet50", request) for request in trace]
    result = run_trace(plane, arrivals)
    return obs, result


class TestEndToEnd:
    def test_live_trace_round_trips_through_the_analyzer(self, tmp_path):
        obs, result = _traced_plane_run()
        trace_path = obs.tracer.write_chrome(tmp_path / "live.trace.json")
        report = analyze_trace(trace_path)
        assert report["requests"]["completed"] == len(result.served)
        assert report["requests"]["seen"] == result.arrived
        # every request carries a trace id — the causal chain is complete
        assert report["requests"]["with_trace_id"] == result.arrived
        assert report["batches"]["count"] == len(result.batches)
        for row in report["slowest"]:
            assert sum(row["stages"].values()) == pytest.approx(
                row["latency_ms"]
            )
            assert {link["event"] for link in row["chain"]} == {
                "arrive",
                "admit",
                "queued",
                "complete",
            }

    def test_json_and_jsonl_exports_analyze_identically(self, tmp_path):
        obs, _ = _traced_plane_run()
        chrome = obs.tracer.write_chrome(tmp_path / "t.trace.json")
        jsonl = obs.tracer.write_jsonl(tmp_path / "t.trace.jsonl")
        a = analyze_events(load_trace_events(chrome))
        b = analyze_events(load_trace_events(jsonl))
        assert json.dumps(a, sort_keys=True) == json.dumps(
            b, sort_keys=True
        )

    def test_analysis_is_byte_deterministic(self, tmp_path):
        obs, _ = _traced_plane_run()
        path = obs.tracer.write_chrome(tmp_path / "t.trace.json")
        dumps = [
            json.dumps(analyze_trace(path), indent=1, sort_keys=True)
            for _ in range(2)
        ]
        assert dumps[0] == dumps[1]

    def test_diff_attributes_batch_window_change(self, tmp_path):
        paths = []
        for max_batch in (1, 8):
            obs, _ = _traced_plane_run(max_batch=max_batch)
            paths.append(
                obs.tracer.write_chrome(
                    tmp_path / f"mb{max_batch}.trace.json"
                )
            )
        diff = diff_analyses(
            analyze_trace(paths[0]), analyze_trace(paths[1])
        )
        assert diff["dominant_stage"] == "batch_wait_ms"
        assert diff["delta"]["stage_mean_ms"]["batch_wait_ms"] > 0.0


class TestCli:
    def _trace_file(self, tmp_path):
        obs, _ = _traced_plane_run()
        return obs.tracer.write_chrome(tmp_path / "cli.trace.json")

    def test_analyze_writes_json_and_markdown(self, tmp_path, capsys):
        trace = self._trace_file(tmp_path)
        out_json = tmp_path / "report.json"
        out_md = tmp_path / "report.md"
        code = main(
            [
                "analyze",
                str(trace),
                "--json",
                str(out_json),
                "--md",
                str(out_md),
            ]
        )
        assert code == 0
        report = json.loads(out_json.read_text())
        assert set(report["stages"]) == set(STAGES)
        assert out_md.read_text().startswith("# Trace analysis")
        # --md swallows stdout
        assert capsys.readouterr().out == ""

    def test_cli_json_output_is_byte_identical_across_runs(
        self, tmp_path, capsys
    ):
        trace = self._trace_file(tmp_path)
        outs = []
        for i in range(2):
            out = tmp_path / f"report{i}.json"
            assert main(["analyze", str(trace), "--json", str(out)]) == 0
            outs.append(out.read_bytes())
        capsys.readouterr()
        assert outs[0] == outs[1]

    def test_diff_flag_embeds_the_diff_in_the_report(
        self, tmp_path, capsys
    ):
        obs_a, _ = _traced_plane_run(max_batch=1)
        obs_b, _ = _traced_plane_run(max_batch=8)
        path_a = obs_a.tracer.write_chrome(tmp_path / "a.trace.json")
        path_b = obs_b.tracer.write_chrome(tmp_path / "b.trace.json")
        out = tmp_path / "diff.json"
        code = main(
            [
                "analyze",
                str(path_a),
                "--diff",
                str(path_b),
                "--json",
                str(out),
            ]
        )
        assert code == 0
        report = json.loads(out.read_text())
        assert report["diff"]["dominant_stage"] == "batch_wait_ms"
        assert "## Diff" in capsys.readouterr().out

    def test_usage_and_error_exit_codes(self, tmp_path, capsys):
        assert main([]) == 2
        assert main(["-h"]) == 0
        assert main(["frobnicate"]) == 2
        assert main(["analyze", str(tmp_path / "missing.json")]) == 2
        bad = tmp_path / "bad.json"
        bad.write_text("{\"not\": \"a trace\"}")
        assert main(["analyze", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "traceEvents" in err
