"""End-to-end convolution tests: IM2ROW + generated kernels == direct conv."""

from __future__ import annotations

import numpy as np
import pytest

from repro.blis.gemm import BlisGemm
from repro.sim.memory import TileParams
from repro.workloads.conv import ConvSpec, conv_reference
from repro.workloads.conv_driver import conv2d_gemm


@pytest.fixture(scope="module")
def engine(registry):
    return BlisGemm(
        registry.family(),
        tiles=TileParams(mc=16, kc=8, nc=24, mr=8, nr=12),
    )


class TestConvByGemm:
    def _check(self, spec, engine, seed=0):
        rng = np.random.default_rng(seed)
        x = rng.random((spec.height, spec.width, spec.cin), dtype=np.float32)
        f = rng.random(
            (spec.kh, spec.kw, spec.cin, spec.cout), dtype=np.float32
        )
        got = conv2d_gemm(x, f, spec, engine=engine)
        want = conv_reference(x, f, spec)
        np.testing.assert_allclose(got, want, rtol=1e-3, atol=1e-4)

    def test_1x1_conv(self, engine):
        self._check(ConvSpec(6, 6, 8, 4, 1, 1), engine)

    def test_3x3_padded(self, engine):
        self._check(ConvSpec(7, 5, 3, 6, 3, 3, 1, 1), engine)

    def test_strided_7x7(self, engine):
        """The ResNet stem shape in miniature: 7x7 stride-2 on 3 channels."""
        self._check(ConvSpec(16, 16, 3, 8, 7, 7, 2, 3), engine)

    def test_gemm_path_equals_numpy_path(self, engine):
        spec = ConvSpec(5, 5, 4, 4, 3, 3, 1, 1)
        rng = np.random.default_rng(1)
        x = rng.random((5, 5, 4), dtype=np.float32)
        f = rng.random((3, 3, 4, 4), dtype=np.float32)
        via_engine = conv2d_gemm(x, f, spec, engine=engine)
        via_numpy = conv2d_gemm(x, f, spec, engine=None)
        np.testing.assert_allclose(via_engine, via_numpy, rtol=1e-4, atol=1e-5)

    def test_bad_filter_shape_rejected(self, engine):
        spec = ConvSpec(5, 5, 4, 4, 3, 3)
        with pytest.raises(ValueError, match="filters"):
            conv2d_gemm(
                np.zeros((5, 5, 4), dtype=np.float32),
                np.zeros((3, 3, 4, 5), dtype=np.float32),
                spec,
            )
