"""Tests for the pretty printer: syntax, precedence, naming."""

from __future__ import annotations


from repro.core import DRAM, Neon, proc
from repro.core.loopir import BinOp, Const, Read, USub
from repro.core.pprint import expr_to_str, stmt_to_str
from repro.core.prelude import Sym
from repro.core.typesys import INDEX


def var(name):
    return Read(Sym(name), (), INDEX)


class TestExpressions:
    def test_precedence_parenthesization(self):
        # (a + b) * c needs parens; a + b * c does not
        a, b, c = var("a"), var("b"), var("c")
        e1 = BinOp("*", BinOp("+", a, b, INDEX), c, INDEX)
        assert expr_to_str(e1) == "(a + b) * c"
        e2 = BinOp("+", a, BinOp("*", b, c, INDEX), INDEX)
        assert expr_to_str(e2) == "a + b * c"

    def test_unary_minus(self):
        e = USub(var("x"), INDEX)
        assert expr_to_str(e) == "-x"

    def test_minus_in_product_needs_no_parens(self):
        # Python parses -x * y as (-x) * y, so this round-trips bare
        e = BinOp("*", USub(var("x"), INDEX), var("y"), INDEX)
        assert expr_to_str(e) == "-x * y"

    def test_minus_of_sum_parenthesized(self):
        e = USub(BinOp("+", var("x"), var("y"), INDEX), INDEX)
        assert expr_to_str(e) == "-(x + y)" or expr_to_str(e) == "-x + y"
        # the current printer renders the operand with precedence 6,
        # guaranteeing correctness; pin the exact output:
        assert expr_to_str(e) == "-(x + y)"

    def test_float_literal(self):
        from repro.core.typesys import R

        assert expr_to_str(Const(2.0, R)) == "2.0"


class TestProcedures:
    def test_full_kernel_rendering(self, uk8x12):
        text = str(uk8x12.proc)
        assert text.startswith("def uk_8x12_f32_packed(")
        assert "@ Neon" in text
        assert "neon_vfmla_4xf32_4xf32(" in text
        assert "0:4" in text  # window slices

    def test_colliding_display_names_uniquified(self):
        @proc
        def twice(x: f32[8] @ DRAM):
            for i in seq(0, 4):
                x[i] = 0.0
            for i in seq(0, 4):
                x[i + 4] = 1.0

        text = str(twice)
        assert "for i in" in text
        assert "for i_1 in" in text

    def test_preds_rendered_as_asserts(self):
        @proc
        def checked(N: size, x: f32[N] @ DRAM):
            assert N % 4 == 0
            for i in seq(0, N):
                x[i] = 0.0

        assert "assert N % 4 == 0" in str(checked)

    def test_window_types_rendered(self):
        from repro.isa.neon import neon_vld_4xf32

        text = str(neon_vld_4xf32)
        assert "[f32][4] @ Neon" in text
        assert "stride(" in text

    def test_stmt_to_str_single(self):
        @proc
        def one(x: f32[4] @ DRAM):
            for i in seq(0, 4):
                x[i] = 0.0

        loop = one.ir.body[0]
        text = stmt_to_str(loop)
        assert text.splitlines()[0] == "for i in seq(0, 4):"
