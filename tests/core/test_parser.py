"""Tests for the @proc front end: accepted DSL and rejected syntax."""

from __future__ import annotations

import pytest

from repro.core import DRAM, Neon, ParseError, proc
from repro.core.loopir import (
    Alloc,
    Assign,
    BinOp,
    For,
    Read,
    Reduce,
    StrideExpr,
    WindowExpr,
)
from repro.core.parser import parse_source
from repro.core.typesys import INDEX, SIZE, TensorType


class TestSignatures:
    def test_size_and_tensor_args(self):
        @proc
        def f(N: size, x: f32[N] @ DRAM):
            for i in seq(0, N):
                x[i] = 0.0

        args = f.ir.args
        assert args[0].type is SIZE
        assert isinstance(args[1].type, TensorType)
        assert args[1].type.base.name == "f32"
        assert args[1].mem is DRAM

    def test_default_memory_is_dram(self):
        @proc
        def f(x: f32[4]):
            x[0] = 0.0

        assert f.ir.args[0].mem is DRAM

    def test_symbolic_shapes_reference_size_args(self):
        @proc
        def f(M: size, N: size, x: f32[M, N] @ DRAM):
            x[0, 0] = 0.0

        shape = f.ir.args[2].type.shape
        assert isinstance(shape[0], Read)
        assert shape[0].name == f.ir.args[0].name

    def test_window_argument_types(self):
        @proc
        def f(dst: [f32][4] @ Neon, src: [f32][4] @ DRAM):
            for i in seq(0, 4):
                dst[i] = src[i]

        assert f.ir.args[0].type.window
        assert f.ir.args[0].mem is Neon

    def test_missing_annotation_rejected(self):
        with pytest.raises(ParseError, match="annotation"):
            parse_source("def f(x):\n    pass")

    def test_index_argument(self):
        @proc
        def f(l: index, x: f32[8] @ DRAM):
            assert l >= 0
            assert l < 8
            x[l] = 0.0

        assert f.ir.args[0].type is INDEX
        assert len(f.ir.preds) == 2


class TestBody:
    def test_loop_structure(self):
        @proc
        def f(N: size, x: f32[N] @ DRAM):
            for i in seq(0, N):
                x[i] = 0.0

        loop = f.ir.body[0]
        assert isinstance(loop, For)
        assert isinstance(loop.body[0], Assign)

    def test_reduce_parses_to_reduce_node(self):
        @proc
        def f(x: f32[4] @ DRAM, y: f32[4] @ DRAM):
            for i in seq(0, 4):
                x[i] += y[i]

        assert isinstance(f.ir.body[0].body[0], Reduce)

    def test_alloc_with_memory(self):
        @proc
        def f(x: f32[4] @ DRAM):
            tmp: f32[4] @ Neon
            for i in seq(0, 4):
                tmp[i] = x[i]

        alloc = f.ir.body[0]
        assert isinstance(alloc, Alloc)
        assert alloc.mem is Neon

    def test_stride_assert(self):
        @proc
        def f(x: f32[4] @ DRAM):
            assert stride(x, 0) == 1
            x[0] = 0.0

        pred = f.ir.preds[0]
        assert isinstance(pred, BinOp) and isinstance(pred.lhs, StrideExpr)

    def test_nested_loops_share_scope(self):
        @proc
        def f(N: size, x: f32[N, N] @ DRAM):
            for i in seq(0, N):
                for j in seq(0, N):
                    x[i, j] = 0.0

        inner = f.ir.body[0].body[0]
        assert isinstance(inner, For)

    def test_affine_index_expressions(self):
        @proc
        def f(x: f32[16] @ DRAM):
            for i in seq(0, 4):
                for j in seq(0, 4):
                    x[4 * i + j] = 0.0

        stmt = f.ir.body[0].body[0].body[0]
        assert isinstance(stmt.idx[0], BinOp)

    def test_docstring_allowed(self):
        @proc
        def f(x: f32[1] @ DRAM):
            """this docstring is ignored"""
            x[0] = 0.0

        assert len(f.ir.body) == 1


class TestCalls:
    def test_call_with_window_args(self):
        from repro.isa.neon import neon_vld_4xf32

        @proc
        def f(x: f32[8] @ DRAM):
            buf: f32[8] @ Neon
            neon_vld_4xf32(buf[0:4], x[0:4])
            neon_vld_4xf32(buf[4:8], x[4:8])

        call = f.ir.body[1]
        assert all(isinstance(a, WindowExpr) for a in call.args)

    def test_call_arity_checked(self):
        from repro.isa.neon import neon_vld_4xf32

        with pytest.raises(ParseError, match="argument"):

            @proc
            def f(x: f32[8] @ DRAM):
                buf: f32[8] @ Neon
                neon_vld_4xf32(buf[0:4])

    def test_unknown_callee_rejected(self):
        with pytest.raises(ParseError, match="not a known procedure"):
            parse_source("def f(x: f32[4]):\n    mystery(x)")


class TestRejectedSyntax:
    def test_while_rejected(self):
        with pytest.raises(ParseError):
            parse_source(
                "def f(x: f32[4]):\n    while True:\n        pass"
            )

    def test_plain_range_rejected(self):
        with pytest.raises(ParseError, match="seq"):
            parse_source(
                "def f(N: size, x: f32[N]):\n"
                "    for i in range(0, N):\n"
                "        x[i] = 0.0"
            )

    def test_if_rejected(self):
        with pytest.raises(ParseError):
            parse_source(
                "def f(x: f32[4]):\n    if x[0] > 0:\n        x[0] = 0.0"
            )

    def test_unknown_name_rejected(self):
        with pytest.raises(ParseError, match="unknown name"):
            parse_source("def f(x: f32[4]):\n    x[0] = y")

    def test_late_assert_rejected(self):
        with pytest.raises(ParseError, match="precede"):
            parse_source(
                "def f(x: f32[4]):\n    x[0] = 0.0\n    assert stride(x, 0) == 1"
            )

    def test_rank_mismatch_rejected(self):
        with pytest.raises(ParseError, match="rank"):
            parse_source("def f(x: f32[4, 4]):\n    x[0] = 0.0")

    def test_augmented_subtraction_rejected(self):
        with pytest.raises(ParseError, match="reduction"):
            parse_source("def f(x: f32[4]):\n    x[0] -= 1.0")

    def test_slice_with_step_rejected(self):
        from repro.isa.neon import neon_vld_4xf32  # noqa: F401

        with pytest.raises(ParseError):
            parse_source(
                "def f(x: f32[8]):\n    y: f32[8] @ Neon\n"
                "    g(y[0:8:2], x[0:4])",
                env={"g": neon_vld_4xf32},
            )


class TestRoundTrip:
    """Pretty-printed procedures re-parse to the same structure."""

    def test_microkernel_roundtrip(self, matmul_ref):
        from repro.core.parser import parse_source
        from repro.core.pprint import proc_to_str

        text = proc_to_str(matmul_ref.ir)
        reparsed = parse_source(text)
        assert proc_to_str(reparsed) == text

    def test_roundtrip_with_allocs(self):
        @proc
        def f(N: size, x: f32[N] @ DRAM):
            acc: f32[4] @ Neon
            for i in seq(0, 4):
                acc[i] = 0.0
            for i in seq(0, N):
                x[i] = x[i] * 2.0

        from repro.core.parser import parse_source
        from repro.core.pprint import proc_to_str

        text = proc_to_str(f.ir)
        assert proc_to_str(parse_source(text)) == text
