"""Tests for symbols, naming, and the exception hierarchy."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.prelude import (
    FreshNamer,
    ParseError,
    ReproError,
    SchedulingError,
    Sym,
)


class TestSym:
    def test_distinct_identity(self):
        a, b = Sym("x"), Sym("x")
        assert a != b
        assert a.name == b.name == "x"

    def test_copy_is_fresh(self):
        a = Sym("loop")
        b = a.copy()
        assert a != b
        assert b.name == "loop"

    def test_with_name(self):
        a = Sym("i")
        b = a.with_name("it")
        assert b.name == "it"
        assert a != b

    def test_equality_reflexive(self):
        a = Sym("x")
        assert a == a
        assert hash(a) == hash(a)

    def test_usable_as_dict_key(self):
        a, b = Sym("x"), Sym("x")
        table = {a: 1, b: 2}
        assert table[a] == 1
        assert table[b] == 2

    def test_repr_contains_id(self):
        a = Sym("v")
        assert "v#" in repr(a)
        assert str(a) == "v"

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Sym("")

    def test_rejects_non_identifier(self):
        with pytest.raises(ValueError):
            Sym("a b")

    def test_ids_monotone(self):
        a, b = Sym("x"), Sym("y")
        assert b.id > a.id

    @given(st.text(alphabet="abcxyz_", min_size=1, max_size=8))
    def test_many_syms_all_distinct(self, name):
        syms = [Sym(name) for _ in range(5)]
        assert len(set(syms)) == 5


class TestFreshNamer:
    def test_stable_assignment(self):
        namer = FreshNamer()
        a = Sym("x")
        assert namer.name_of(a) == "x"
        assert namer.name_of(a) == "x"

    def test_collision_suffixes(self):
        namer = FreshNamer()
        a, b, c = Sym("x"), Sym("x"), Sym("x")
        assert namer.name_of(a) == "x"
        assert namer.name_of(b) == "x_1"
        assert namer.name_of(c) == "x_2"

    def test_respects_taken_set(self):
        namer = FreshNamer(taken={"for"})
        assert namer.name_of(Sym("for")) == "for_1"

    @given(st.lists(st.sampled_from(["a", "b", "ab"]), min_size=1, max_size=20))
    def test_all_assigned_names_unique(self, names):
        namer = FreshNamer()
        assigned = [namer.name_of(Sym(n)) for n in names]
        assert len(set(assigned)) == len(assigned)


class TestExceptions:
    def test_hierarchy(self):
        assert issubclass(ParseError, ReproError)
        assert issubclass(SchedulingError, ReproError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise SchedulingError("nope")
