"""Tests for the reference interpreter: the semantic ground truth."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DRAM, InterpError, Neon, proc


@proc
def scale(N: size, alpha: f32[1] @ DRAM, x: f32[N] @ DRAM):
    for i in seq(0, N):
        x[i] = x[i] * alpha[0]


@proc
def matvec(M: size, N: size, A: f32[M, N] @ DRAM, x: f32[N] @ DRAM, y: f32[M] @ DRAM):
    for i in seq(0, M):
        for j in seq(0, N):
            y[i] += A[i, j] * x[j]


class TestBasics:
    def test_scale(self):
        x = np.arange(5, dtype=np.float32)
        scale.interpret(5, np.array([2.0], dtype=np.float32), x)
        np.testing.assert_allclose(x, [0, 2, 4, 6, 8])

    def test_matvec(self):
        rng = np.random.default_rng(0)
        A = rng.random((3, 4), dtype=np.float32)
        x = rng.random(4, dtype=np.float32)
        y = np.zeros(3, dtype=np.float32)
        matvec.interpret(3, 4, A, x, y)
        np.testing.assert_allclose(y, A @ x, rtol=1e-6)

    def test_keyword_arguments(self):
        x = np.ones(4, dtype=np.float32)
        scale.interpret(N=4, alpha=np.array([3.0], dtype=np.float32), x=x)
        np.testing.assert_allclose(x, 3.0)

    @given(st.integers(1, 20))
    @settings(max_examples=20, deadline=None)
    def test_matvec_any_size(self, n):
        rng = np.random.default_rng(n)
        A = rng.random((2, n), dtype=np.float32)
        x = rng.random(n, dtype=np.float32)
        y = np.zeros(2, dtype=np.float32)
        matvec.interpret(2, n, A, x, y)
        np.testing.assert_allclose(y, A @ x, rtol=1e-5)


class TestValidation:
    def test_wrong_dtype_rejected(self):
        x = np.zeros(4, dtype=np.float64)
        with pytest.raises(InterpError, match="dtype"):
            scale.interpret(4, np.array([1.0], dtype=np.float32), x)

    def test_wrong_shape_rejected(self):
        x = np.zeros(5, dtype=np.float32)
        with pytest.raises(InterpError, match="shape"):
            scale.interpret(4, np.array([1.0], dtype=np.float32), x)

    def test_missing_argument_rejected(self):
        with pytest.raises(InterpError, match="missing"):
            scale.interpret(4)

    def test_non_array_rejected(self):
        with pytest.raises(InterpError, match="numpy"):
            scale.interpret(4, [1.0], np.zeros(4, dtype=np.float32))

    def test_out_of_bounds_read_caught(self):
        @proc
        def oob(x: f32[4] @ DRAM):
            for i in seq(0, 4):
                x[i] = x[i + 2]

        with pytest.raises(InterpError, match="out of bounds"):
            oob.interpret(np.zeros(4, dtype=np.float32))


class TestInstrSemantics:
    def test_call_executes_instruction_body(self):
        from repro.isa.neon import neon_vld_4xf32, neon_vst_4xf32

        @proc
        def roundtrip(x: f32[4] @ DRAM, y: f32[4] @ DRAM):
            buf: f32[4] @ Neon
            neon_vld_4xf32(buf[0:4], x[0:4])
            neon_vst_4xf32(y[0:4], buf[0:4])

        x = np.arange(4, dtype=np.float32)
        y = np.zeros(4, dtype=np.float32)
        roundtrip.interpret(x, y)
        np.testing.assert_array_equal(y, x)

    def test_instruction_stride_precondition_enforced(self):
        from repro.isa.neon import neon_vld_4xf32

        @proc
        def strided(x: f32[4, 4] @ DRAM):
            buf: f32[4] @ Neon
            neon_vld_4xf32(buf[0:4], x[0:4, 0])

        with pytest.raises(InterpError, match="precondition"):
            strided.interpret(np.zeros((4, 4), dtype=np.float32))

    def test_lane_fma(self):
        from repro.isa.neon import neon_vfmla_4xf32_4xf32

        @proc
        def fma_lane(l: index, acc: f32[4] @ Neon, a: f32[4] @ Neon, b: f32[4] @ Neon):
            assert l >= 0
            assert l < 4
            neon_vfmla_4xf32_4xf32(acc[0:4], a[0:4], b[0:4], l)

        acc = np.zeros(4, dtype=np.float32)
        a = np.arange(4, dtype=np.float32)
        b = np.array([10, 20, 30, 40], dtype=np.float32)
        fma_lane.interpret(2, acc, a, b)
        np.testing.assert_allclose(acc, a * 30.0)


class TestWindows:
    def test_window_views_alias_storage(self):
        from repro.isa.neon import neon_vst_4xf32

        @proc
        def write_mid(x: f32[12] @ DRAM):
            buf: f32[4] @ Neon
            for i in seq(0, 4):
                buf[i] = 7.0
            neon_vst_4xf32(x[4:8], buf[0:4])

        x = np.zeros(12, dtype=np.float32)
        write_mid.interpret(x)
        np.testing.assert_array_equal(x[4:8], 7.0)
        np.testing.assert_array_equal(x[:4], 0.0)
        np.testing.assert_array_equal(x[8:], 0.0)

    def test_scalar_alloc_zero_rank(self):
        @proc
        def accum(x: f32[4] @ DRAM, out: f32[1] @ DRAM):
            acc: f32 @ DRAM
            acc = 0.0
            for i in seq(0, 4):
                acc += x[i]
            out[0] = acc

        x = np.arange(4, dtype=np.float32)
        out = np.zeros(1, dtype=np.float32)
        accum.interpret(x, out)
        assert out[0] == 6.0


class TestPredicates:
    def test_size_predicate_checked(self):
        @proc
        def even_only(N: size, x: f32[N] @ DRAM):
            assert N % 2 == 0
            for i in seq(0, N):
                x[i] = 0.0

        even_only.interpret(4, np.zeros(4, dtype=np.float32))
        with pytest.raises(InterpError, match="precondition"):
            even_only.interpret(3, np.zeros(3, dtype=np.float32))
