"""Tests for rename, partial_eval, and simplify."""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).parent.parent))

from helpers import assert_equivalent

from repro.core import DRAM, SchedulingError, proc
from repro.core.scheduling import rename, simplify


@proc
def gemm_like(M: size, N: size, K: size, A: f32[K, M] @ DRAM, B: f32[K, N] @ DRAM, C: f32[N, M] @ DRAM):
    for k in seq(0, K):
        for j in seq(0, N):
            for i in seq(0, M):
                C[j, i] += A[k, i] * B[k, j]


class TestRename:
    def test_rename_changes_name_only(self):
        p = rename(gemm_like, "uk8x12")
        assert p.name() == "uk8x12"
        assert str(p).startswith("def uk8x12(")

    def test_invalid_name_rejected(self):
        with pytest.raises(SchedulingError):
            rename(gemm_like, "8bad name")


class TestPartialEval:
    def test_positional_binding(self):
        p = gemm_like.partial_eval(8, 12)
        names = p.arg_names()
        assert "M" not in names and "N" not in names and "K" in names
        assert "seq(0, 12)" in str(p)

    def test_keyword_binding(self):
        p = gemm_like.partial_eval(K=16)
        assert "K" not in p.arg_names()
        assert "seq(0, 16)" in str(p)

    def test_shapes_specialize(self):
        p = gemm_like.partial_eval(8, 12)
        a_arg = p.ir.arg_named("A")
        from repro.core.affine import try_constant

        assert try_constant(a_arg.type.shape[1]) == 8

    def test_semantics_match_original(self):
        p = gemm_like.partial_eval(8, 12)
        rng = np.random.default_rng(0)
        K = 5
        A = rng.random((K, 8), dtype=np.float32)
        B = rng.random((K, 12), dtype=np.float32)
        C1 = rng.random((12, 8), dtype=np.float32)
        C2 = C1.copy()
        gemm_like.interpret(8, 12, K, A, B, C1)
        p.interpret(K, A, B, C2)
        np.testing.assert_allclose(C1, C2)

    def test_nonpositive_size_rejected(self):
        with pytest.raises(SchedulingError, match="positive"):
            gemm_like.partial_eval(0, 12)

    def test_too_many_values_rejected(self):
        with pytest.raises(SchedulingError):
            gemm_like.partial_eval(1, 2, 3, 4)

    def test_contradicted_predicate_rejected(self):
        @proc
        def even(N: size, x: f32[N] @ DRAM):
            assert N % 2 == 0
            for i in seq(0, N):
                x[i] = 0.0

        with pytest.raises(SchedulingError, match="predicate"):
            even.partial_eval(3)

    def test_satisfied_predicate_dropped(self):
        @proc
        def even(N: size, x: f32[N] @ DRAM):
            assert N % 2 == 0
            for i in seq(0, N):
                x[i] = 0.0

        p = even.partial_eval(4)
        assert not p.ir.preds


class TestSimplify:
    def test_folds_index_arithmetic(self):
        @proc
        def messy(x: f32[16] @ DRAM):
            for i in seq(0, 4):
                x[2 * i + 2 * i + 0] = 0.0

        p = simplify(messy)
        assert "4 * i" in str(p)

    def test_drops_empty_loops(self):
        @proc
        def with_empty(x: f32[4] @ DRAM):
            for i in seq(0, 0):
                x[0] = 1.0
            for i in seq(0, 4):
                x[i] = 0.0

        p = simplify(with_empty)
        assert len(p.ir.body) == 1

    def test_keeps_trip_one_loops(self):
        @proc
        def single(x: f32[4] @ DRAM):
            for i in seq(0, 1):
                x[i] = 0.0

        p = simplify(single)
        assert "for i in seq(0, 1)" in str(p)

    def test_data_identities_folded(self):
        @proc
        def identities(x: f32[4] @ DRAM):
            for i in seq(0, 4):
                x[i] = x[i] * 1.0 + 0.0

        p = simplify(identities)
        assert "* 1.0" not in str(p)
        assert_equivalent(identities, p, sizes={})
