"""Additional C-backend coverage: non-instr calls, scalars, misc paths."""

from __future__ import annotations

import pytest

from repro.core import DRAM, proc
from repro.core.prelude import CodegenError


class TestPlainCCalls:
    def test_call_to_plain_procedure(self):
        @proc
        def helper(x: f32[4] @ DRAM):
            for i in seq(0, 4):
                x[i] = x[i] * 2.0

        @proc
        def caller(y: f32[8] @ DRAM):
            helper(y[0:4])
            helper(y[4:8])

        code = caller.c_code()
        assert "helper(&y[0]);" in code
        assert "helper(&y[4]);" in code

    def test_scalar_alloc_declaration(self):
        @proc
        def with_scalar(x: f32[4] @ DRAM):
            acc: f32 @ DRAM
            acc = 0.0
            for i in seq(0, 4):
                acc += x[i]
            x[0] = acc

        code = with_scalar.c_code()
        assert "float acc;" in code
        assert "acc += x[i];" in code

    def test_symbolic_shape_strides(self):
        @proc
        def dynamic(M: size, N: size, x: f32[M, N] @ DRAM):
            for i in seq(0, M):
                for j in seq(0, N):
                    x[i, j] = 0.0

        code = dynamic.c_code()
        assert "x[(i) * N + j]" in code

    def test_keyword_collision_renamed(self):
        @proc
        def uses_keyword(float_: f32[4] @ DRAM):
            for int_ in seq(0, 4):
                float_[int_] = 0.0

        # python-side names already avoid keywords; check a loop var that
        # collides with a prior buffer name instead
        code = uses_keyword.c_code()
        assert "void uses_keyword(" in code

    def test_fp16_declarations(self):
        @proc
        def halfs(x: f16[8] @ DRAM):
            buf: f16[8] @ Neon8f
            for i in seq(0, 8):
                buf[i] = x[i]

        from repro.core import Neon8f  # noqa: F401 (annotation resolution)

        code = halfs.c_code()
        assert "_Float16" in code or "float16x8_t" in code

    def test_pass_statement(self):
        @proc
        def noop(x: f32[1] @ DRAM):
            pass

        assert "void noop(" in noop.c_code()


class TestAsmExtra:
    def test_broadcast_kernel_asm(self):
        from repro.ukernel.extended import generate_nopack_microkernel

        trace = generate_nopack_microkernel(2, 8).proc.asm_trace()
        assert trace.count("dup") == 2       # one broadcast per A row
        assert trace.count("fmla") == 4      # 2 rows x 2 column vectors

    def test_asm_requires_scheduled_kernel(self):
        @proc
        def raw(N: size, x: f32[N] @ DRAM):
            for k in seq(0, N):
                x[k] = 0.0

        with pytest.raises(CodegenError):
            raw.asm_trace()

    def test_register_budget_error(self):
        """A tile needing more than 32 live vectors must be rejected."""
        from repro.isa.neon import NEON_F32_LIB
        from repro.ukernel.generator import generate_microkernel

        kernel = generate_microkernel(16, 12, NEON_F32_LIB)
        # 48 accumulators + operands exceed the ARM register file
        with pytest.raises(CodegenError, match="register"):
            kernel.proc.asm_trace()
