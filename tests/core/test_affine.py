"""Tests for affine normalization: linearize, delinearize, equality."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.core.affine import (
    LinExpr,
    delinearize,
    diff_constant,
    exprs_equal,
    linearize,
    simplify_expr,
    try_constant,
)
from repro.core.loopir import BinOp, Const, Read, USub
from repro.core.prelude import Sym
from repro.core.typesys import INDEX


def var(sym):
    return Read(sym, (), INDEX)


def const(v):
    return Const(v, INDEX)


def add(a, b):
    return BinOp("+", a, b, INDEX)


def mul(a, b):
    return BinOp("*", a, b, INDEX)


class TestLinearize:
    def test_constant(self):
        lin = linearize(const(7))
        assert lin.is_constant() and lin.constant_value() == 7

    def test_variable(self):
        x = Sym("x")
        lin = linearize(var(x))
        assert lin.terms == {x: 1} and lin.offset == 0

    def test_affine_combination(self):
        x, y = Sym("x"), Sym("y")
        e = add(mul(const(4), var(x)), add(var(y), const(3)))
        lin = linearize(e)
        assert lin.terms == {x: 4, y: 1}
        assert lin.offset == 3

    def test_cancellation(self):
        x = Sym("x")
        e = BinOp("-", var(x), var(x), INDEX)
        lin = linearize(e)
        assert lin.is_constant() and lin.constant_value() == 0

    def test_negation(self):
        x = Sym("x")
        lin = linearize(USub(var(x), INDEX))
        assert lin.terms == {x: -1}

    def test_product_of_variables_is_not_affine(self):
        x, y = Sym("x"), Sym("y")
        assert linearize(mul(var(x), var(y))) is None

    def test_constant_division(self):
        e = BinOp("/", const(7), const(2), INDEX)
        assert linearize(e).constant_value() == 3

    def test_constant_modulo(self):
        e = BinOp("%", const(7), const(2), INDEX)
        assert linearize(e).constant_value() == 1

    def test_division_by_zero_rejected(self):
        e = BinOp("/", const(7), const(0), INDEX)
        assert linearize(e) is None

    def test_float_const_not_affine(self):
        from repro.core.typesys import R

        assert linearize(Const(1.5, R)) is None


class TestDelinearize:
    def test_roundtrip_simple(self):
        x = Sym("x")
        e = add(mul(const(4), var(x)), const(2))
        again = linearize(delinearize(linearize(e)))
        assert again == linearize(e)

    @given(
        st.lists(st.integers(-5, 5), min_size=1, max_size=4),
        st.integers(-10, 10),
    )
    def test_roundtrip_random(self, coeffs, offset):
        syms = [Sym(f"v{i}") for i in range(len(coeffs))]
        lin = LinExpr(
            {s: c for s, c in zip(syms, coeffs) if c}, offset
        )
        assert linearize(delinearize(lin)) == lin

    def test_deterministic_term_order(self):
        x, y = Sym("a"), Sym("b")
        lin = LinExpr({x: 2, y: 3}, 1)
        from repro.core.pprint import expr_to_str

        assert expr_to_str(delinearize(lin)) == expr_to_str(delinearize(lin))


class TestEquality:
    def test_commuted_forms_equal(self):
        it, itt = Sym("it"), Sym("itt")
        a = add(mul(const(4), var(it)), var(itt))
        b = add(var(itt), mul(var(it), const(4)))
        assert exprs_equal(a, b)

    def test_different_coefficients_unequal(self):
        it = Sym("it")
        assert not exprs_equal(mul(const(4), var(it)), mul(const(2), var(it)))

    def test_diff_constant(self):
        x = Sym("x")
        a = add(var(x), const(5))
        b = add(var(x), const(2))
        assert diff_constant(a, b) == 3

    def test_diff_non_constant(self):
        x, y = Sym("x"), Sym("y")
        assert diff_constant(var(x), var(y)) is None

    def test_try_constant(self):
        assert try_constant(add(const(2), const(3))) == 5
        assert try_constant(var(Sym("x"))) is None


class TestSimplify:
    def test_folds_constants(self):
        e = add(const(2), mul(const(3), const(4)))
        assert try_constant(simplify_expr(e)) == 14

    def test_collects_terms(self):
        x = Sym("x")
        e = add(var(x), add(var(x), var(x)))
        lin = linearize(simplify_expr(e))
        assert lin.terms == {x: 3}

    def test_preserves_non_affine(self):
        x, y = Sym("x"), Sym("y")
        e = mul(var(x), var(y))
        out = simplify_expr(e)
        assert isinstance(out, BinOp) and out.op == "*"

    @given(st.integers(-20, 20), st.integers(-20, 20), st.integers(-5, 5))
    def test_linear_identity_random(self, a, b, c):
        x = Sym("x")
        e = add(mul(const(a), var(x)), add(const(b), mul(const(c), var(x))))
        lin = linearize(simplify_expr(e))
        expected_coeff = a + c
        assert lin.terms.get(x, 0) == expected_coeff
        assert lin.offset == b
