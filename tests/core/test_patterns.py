"""Tests for the pattern language and cursors."""

from __future__ import annotations

import pytest

from repro.core import DRAM, PatternError, proc
from repro.core.loopir import Alloc, For, Reduce
from repro.core.patterns import (
    find_all_stmts,
    find_alloc,
    find_loop,
    find_stmt,
    get_stmt,
    parse_pattern,
)


@proc
def sample(N: size, x: f32[N] @ DRAM, y: f32[N] @ DRAM):
    tmp: f32[4] @ DRAM
    for i in seq(0, 4):
        tmp[i] = 0.0
    for k in seq(0, N):
        for i in seq(0, 4):
            y[k] += x[k] * tmp[i]


class TestParsePattern:
    def test_loop_pattern(self):
        p = parse_pattern("for i in _: _")
        assert p.kind == "for" and p.name == "i"

    def test_wildcard_loop(self):
        p = parse_pattern("for _ in _: _")
        assert p.kind == "for" and p.name is None

    def test_assign_pattern(self):
        p = parse_pattern("tmp[_] = _")
        assert p.kind == "assign" and p.name == "tmp"

    def test_reduce_pattern(self):
        p = parse_pattern("y[_] += _")
        assert p.kind == "reduce" and p.name == "y"

    def test_scalar_assign_pattern(self):
        p = parse_pattern("acc = _")
        assert p.kind == "assign" and p.name == "acc"

    def test_index_selector(self):
        p = parse_pattern("for i in _: _ #1")
        assert p.index == 1

    def test_alloc_pattern(self):
        p = parse_pattern("tmp: _")
        assert p.kind == "alloc"

    def test_call_pattern(self):
        p = parse_pattern("neon_vld_4xf32(_)")
        assert p.kind == "call" and p.name == "neon_vld_4xf32"

    def test_garbage_rejected(self):
        with pytest.raises(PatternError):
            parse_pattern("for for for")


class TestFind:
    def test_find_loop_by_name(self):
        cursor = find_loop(sample.ir, "k")
        stmt = cursor.stmt()
        assert isinstance(stmt, For) and stmt.iter.name == "k"

    def test_find_nth_match(self):
        first = find_stmt(sample.ir, "for i in _: _")
        second = find_stmt(sample.ir, "for i in _: _ #1")
        assert first.path != second.path
        assert get_stmt(sample.ir, second.path).iter.name == "i"

    def test_find_all_in_program_order(self):
        paths = find_all_stmts(sample.ir, parse_pattern("for _ in _: _"))
        assert len(paths) == 3
        assert paths == sorted(paths)

    def test_find_reduce(self):
        cursor = find_stmt(sample.ir, "y[_] += _")
        assert isinstance(cursor.stmt(), Reduce)

    def test_find_alloc(self):
        cursor = find_alloc(sample.ir, "tmp")
        assert isinstance(cursor.stmt(), Alloc)

    def test_no_match_raises(self):
        with pytest.raises(PatternError, match="matched nothing"):
            find_stmt(sample.ir, "for zz in _: _")

    def test_out_of_range_selector_raises(self):
        with pytest.raises(PatternError, match="only"):
            find_stmt(sample.ir, "for i in _: _ #7")


class TestCursors:
    def test_gap_cursor_split_index(self):
        cursor = find_stmt(sample.ir, "tmp[_] = _")
        assert cursor.before().split_index() == cursor.path[-1]
        assert cursor.after().split_index() == cursor.path[-1] + 1

    def test_parent_loops(self):
        cursor = find_stmt(sample.ir, "y[_] += _")
        loops = cursor.parent_loops()
        assert [lp.iter.name for lp in loops] == ["k", "i"]
