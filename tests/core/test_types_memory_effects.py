"""Tests for the type system, memories, effects, and traversal utilities."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import DRAM, Neon, Neon8f, proc
from repro.core.effects import (
    expr_range,
    fission_safe,
    loop_bounds_const,
    read_buffers,
    reorder_safe,
    stmt_effects,
    written_buffers,
)
from repro.core.loopir import BinOp, Const, Read
from repro.core.memory import AVX512, memory_by_name, register_memory, Memory
from repro.core.prelude import Sym
from repro.core.traversal import alpha_rename, free_symbols, subst_stmts
from repro.core.typesys import (
    F16,
    F32,
    INDEX,
    R,
    TensorType,
    parse_scalar_type,
    types_compatible,
)


class TestTypes:
    def test_scalar_lookup(self):
        assert parse_scalar_type("f32") is F32
        with pytest.raises(Exception):
            parse_scalar_type("f8")

    def test_generic_unifies_with_floats(self):
        assert types_compatible(R, F32)
        assert types_compatible(F16, R)
        assert not types_compatible(F16, F32)

    def test_integer_not_compatible_with_generic(self):
        from repro.core.typesys import I32

        assert not types_compatible(I32, R)

    def test_tensor_type_helpers(self):
        t = TensorType(F32, (Const(4, INDEX),))
        assert t.rank() == 1
        assert t.basetype() is F32
        assert t.with_base(F16).base is F16
        assert "f32[4]" in str(t)

    def test_ctype_mapping(self):
        assert F32.ctype() == "float"
        assert F16.ctype() == "_Float16"


class TestMemories:
    def test_lookup_by_name(self):
        assert memory_by_name("Neon") is Neon
        with pytest.raises(KeyError):
            memory_by_name("TPU")

    def test_lane_counts(self):
        assert Neon.lanes_for(32) == 4
        assert Neon8f.lanes_for(16) == 8
        assert AVX512.lanes_for(32) == 16

    def test_vector_ctypes(self):
        assert Neon.vector_ctype("f32") == "float32x4_t"
        assert AVX512.vector_ctype("f32") == "__m512"
        with pytest.raises(KeyError):
            Neon.vector_ctype("f64")

    def test_register_custom_memory(self):
        sve = register_memory(
            Memory("SVE_TEST", is_register_file=True, vector_lanes=8,
                   reg_bits=256, ctype_vector=(("f32", "svfloat32_t"),))
        )
        assert memory_by_name("SVE_TEST") is sve

    def test_dram_not_register_file(self):
        assert not DRAM.is_register_file
        with pytest.raises(ValueError):
            DRAM.lanes_for(32)


@proc
def sample_effects(N: size, x: f32[N] @ DRAM, y: f32[N] @ DRAM):
    for i in seq(0, N):
        y[i] += x[i] * 2.0


class TestEffects:
    def test_read_write_sets(self):
        body = sample_effects.ir.body
        x = sample_effects.ir.arg_named("x").name
        y = sample_effects.ir.arg_named("y").name
        assert read_buffers(body) == {x}
        assert written_buffers(body) == {y}

    def test_reduce_counted_as_reduce(self):
        effects = stmt_effects(sample_effects.ir.body)
        kinds = {e.kind for e in effects}
        assert "reduce" in kinds

    def test_expr_range(self):
        i = Sym("i")
        e = BinOp("+", BinOp("*", Const(4, INDEX), Read(i, (), INDEX), INDEX),
                  Const(3, INDEX), INDEX)
        assert expr_range(e, {i: (0, 3)}) == (3, 15)

    def test_expr_range_unknown_symbol(self):
        i = Sym("i")
        assert expr_range(Read(i, (), INDEX), {}) is None

    def test_negative_coefficient_range(self):
        i = Sym("i")
        from repro.core.loopir import USub

        e = USub(Read(i, (), INDEX), INDEX)
        assert expr_range(e, {i: (0, 3)}) == (-3, 0)

    def test_loop_bounds_const(self):
        assert loop_bounds_const(Const(0, INDEX), Const(4, INDEX), {}) == (0, 3)
        assert loop_bounds_const(Const(0, INDEX), Const(0, INDEX), {}) is None

    @given(st.integers(0, 10), st.integers(-5, 5), st.integers(1, 4))
    def test_expr_range_soundness(self, lo_bound, offset, coeff):
        """The computed interval must contain every concrete evaluation."""
        i = Sym("i")
        e = BinOp(
            "+",
            BinOp("*", Const(coeff, INDEX), Read(i, (), INDEX), INDEX),
            Const(offset, INDEX),
            INDEX,
        )
        hi_bound = lo_bound + 3
        rng = expr_range(e, {i: (lo_bound, hi_bound)})
        for concrete in range(lo_bound, hi_bound + 1):
            value = coeff * concrete + offset
            assert rng[0] <= value <= rng[1]


class TestTraversal:
    def test_free_symbols(self):
        body = sample_effects.ir.body
        free = free_symbols(body)
        names = {s.name for s in free}
        assert {"x", "y", "N"} <= names
        assert "i" not in names

    def test_alpha_rename_refreshes_binders(self):
        body = sample_effects.ir.body
        renamed = alpha_rename(body)
        orig_loop = body[0]
        new_loop = renamed[0]
        assert orig_loop.iter != new_loop.iter
        assert orig_loop.iter.name == new_loop.iter.name

    def test_alpha_rename_preserves_free_symbols(self):
        body = sample_effects.ir.body
        assert free_symbols(alpha_rename(body)) == free_symbols(body)

    def test_subst_stmts_renames_lvalues(self):
        y = sample_effects.ir.arg_named("y").name
        z = Sym("z")
        new = subst_stmts(sample_effects.ir.body, {y: Read(z, (), INDEX)})
        assert z in written_buffers(new)


class TestSafetyPredicates:
    def test_reorder_safe_for_reductions(self):
        ir = sample_effects.ir
        loop = ir.body[0]
        assert reorder_safe(loop.iter, Sym("j"), loop.body)

    def test_fission_safe_private_cells(self):
        @proc
        def private(N: size, a: f32[N] @ DRAM, b: f32[N] @ DRAM):
            for i in seq(0, N):
                a[i] = 1.0
                b[i] = a[i]

        loop = private.ir.body[0]
        assert fission_safe([loop.body[0]], [loop.body[1]], [loop.iter])

    def test_fission_unsafe_shared_cell(self):
        @proc
        def shared(N: size, a: f32[4] @ DRAM, b: f32[N] @ DRAM):
            for i in seq(0, N):
                a[0] = 1.0 * i
                b[i] = a[0]

        loop = shared.ir.body[0]
        assert not fission_safe([loop.body[0]], [loop.body[1]], [loop.iter])
