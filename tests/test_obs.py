"""Tests for the observability subsystem (repro.obs).

Covers the tentpole contracts: virtual-clock serve traces are
byte-identical across runs, Chrome trace events validate against the
minimal schema, histogram percentiles agree with the serving report's
nearest-rank definition, exporters are deterministic, the structured
logger honours --quiet/-v, and disabled-by-default instrumentation
changes no existing report bytes.
"""

from __future__ import annotations

import json
import re

import pytest

from repro.obs import (
    Histogram,
    MetricsRegistry,
    NullTracer,
    Obs,
    Tracer,
    VirtualClock,
    jsonl_path_for,
    obs_from_cli,
    prom_path_for,
    validate_trace_events,
    validate_trace_file,
)
from repro.obs import log as obslog
from repro.obs import profile as obs_profile
from repro.obs.metrics import (
    _escape_help,
    _prom_name,
    nearest_rank_percentile,
)
from repro.obs.profile import GemmProfiler
from repro.serve.__main__ import main as serve_main
from repro.serve.report import percentile as serve_percentile
from repro.tune.__main__ import main as tune_main


@pytest.fixture(autouse=True)
def _restore_verbosity():
    previous = obslog.verbosity()
    yield
    obslog.configure(previous)


@pytest.fixture(autouse=True)
def _no_active_profiler():
    yield
    obs_profile.deactivate()


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------


class TestTracer:
    def test_span_emits_complete_event(self):
        clock = VirtualClock()
        tracer = Tracer(clock=clock)
        clock.advance_to_us(10.0)
        with tracer.span("work", cat="test", args={"k": 1}):
            clock.advance_to_us(35.0)
        (event,) = tracer.events()
        assert event["ph"] == "X"
        assert event["ts"] == 10.0 and event["dur"] == 25.0
        assert event["cat"] == "test" and event["args"] == {"k": 1}

    def test_begin_end_nest_and_validate(self):
        clock = VirtualClock()
        tracer = Tracer(clock=clock)
        tracer.begin("outer")
        clock.advance_to_us(1.0)
        tracer.begin("inner")
        clock.advance_to_us(2.0)
        tracer.end()  # inner
        tracer.end()  # outer
        events = tracer.events()
        assert [e["ph"] for e in events] == ["B", "B", "E", "E"]
        assert validate_trace_events(events) == []

    def test_end_without_begin_raises(self):
        with pytest.raises(ValueError):
            Tracer(clock=VirtualClock()).end()

    def test_metadata_sorts_first(self):
        clock = VirtualClock()
        tracer = Tracer(clock=clock)
        tracer.instant("later", ts_us=0.0)
        tracer.metadata("process_name", "p")
        events = tracer.events()
        assert events[0]["ph"] == "M"
        assert "_seq" not in events[0]

    def test_null_tracer_is_inert(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        tracer.begin("x")
        tracer.end()
        tracer.counter("c", 1.0)
        with tracer.span("y"):
            pass
        assert tracer.events() == []

    def test_jsonl_sibling_path(self, tmp_path):
        assert jsonl_path_for("out.trace.json").name == "out.trace.jsonl"
        assert jsonl_path_for("plain").name == "plain.jsonl"


class TestTraceValidator:
    def test_flags_backwards_ts(self):
        events = [
            {"name": "a", "ph": "i", "ts": 5.0, "pid": 0, "tid": 0},
            {"name": "b", "ph": "i", "ts": 1.0, "pid": 0, "tid": 0},
        ]
        problems = validate_trace_events(events)
        assert any("backwards" in p for p in problems)

    def test_flags_x_without_dur(self):
        events = [{"name": "a", "ph": "X", "ts": 0.0, "pid": 0, "tid": 0}]
        assert any("dur" in p for p in validate_trace_events(events))

    def test_flags_unmatched_begin_end(self):
        events = [{"name": "a", "ph": "E", "ts": 0.0, "pid": 0, "tid": 0}]
        assert any("without B" in p for p in validate_trace_events(events))
        events = [{"name": "a", "ph": "B", "ts": 0.0, "pid": 0, "tid": 0}]
        assert any("unclosed" in p for p in validate_trace_events(events))

    def test_flags_non_numeric_counter(self):
        events = [
            {
                "name": "c", "ph": "C", "ts": 0.0, "pid": 0, "tid": 0,
                "args": {"v": "high"},
            }
        ]
        assert any("non-numeric" in p for p in validate_trace_events(events))

    def test_missing_keys(self):
        assert any(
            "missing keys" in p
            for p in validate_trace_events([{"ph": "i"}])
        )

    def test_validates_written_files(self, tmp_path):
        clock = VirtualClock()
        tracer = Tracer(clock=clock)
        tracer.metadata("process_name", "t")
        with tracer.span("s"):
            clock.advance_to_us(4.0)
        chrome = tracer.write_chrome(tmp_path / "t.trace.json")
        jsonl = tracer.write_jsonl(tmp_path / "t.trace.jsonl")
        assert validate_trace_file(chrome) == []
        assert validate_trace_file(jsonl) == []


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


class TestMetrics:
    @pytest.mark.parametrize(
        "values",
        [
            [7.0],
            [3.0, 1.0],
            [5.0, 1.0, 9.0, 3.0],
            [float(v) for v in range(1, 101)],
            [0.25 * v for v in range(17)],
        ],
    )
    @pytest.mark.parametrize("q", [0, 1, 50, 95, 99, 100])
    def test_histogram_percentile_matches_serve_report(self, values, q):
        hist = Histogram("h", buckets=(1.0, 10.0, 100.0))
        for value in values:
            hist.observe(value)
        assert hist.percentile(q) == serve_percentile(values, q)

    def test_counter_rejects_decrease(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)

    def test_gauge_tracks_max(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(3.0)
        gauge.dec(2.0)
        assert gauge.value == 1.0 and gauge.max == 3.0

    def test_kind_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_histogram_requires_increasing_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))

    def test_json_export_is_deterministic(self, tmp_path):
        def build():
            registry = MetricsRegistry()
            registry.gauge("b.gauge").set(2.0)
            registry.counter("a.counter").inc(3)
            hist = registry.histogram("c.hist", buckets=(1.0, 10.0))
            for v in (0.5, 2.0, 50.0):
                hist.observe(v)
            return registry

        paths = []
        for run in ("one", "two"):
            path = build().write_json(tmp_path / run / "m.json")
            paths.append(path.read_bytes())
        assert paths[0] == paths[1]
        snap = json.loads(paths[0])
        assert list(snap) == sorted(snap)
        assert snap["c.hist"]["overflow"] == 1

    def test_prometheus_text_format(self):
        registry = MetricsRegistry()
        registry.counter("serve.requests", help="served").inc(4)
        hist = registry.histogram("lat.ms", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            hist.observe(v)
        text = registry.prometheus_text()
        assert "# TYPE serve_requests counter" in text
        assert "serve_requests 4" in text
        assert 'lat_ms_bucket{le="1"} 1' in text
        assert 'lat_ms_bucket{le="10"} 2' in text  # cumulative
        assert 'lat_ms_bucket{le="+Inf"} 3' in text
        assert "lat_ms_count 3" in text

    def test_prom_sibling_path(self):
        assert prom_path_for("out.metrics.json").name == "out.metrics.prom"


class TestEmptyPercentile:
    def test_histogram_error_names_the_metric(self):
        hist = Histogram("serve.latency_ms", buckets=(1.0,))
        with pytest.raises(ValueError) as excinfo:
            hist.percentile(99)
        message = str(excinfo.value)
        assert "p99" in message
        assert "'serve.latency_ms'" in message
        assert "no observations recorded" in message

    def test_bare_helper_error_without_a_name(self):
        with pytest.raises(
            ValueError, match=r"cannot take p50 of an empty sample"
        ):
            nearest_rank_percentile([], 50)

    def test_snapshot_of_empty_histogram_has_no_percentiles(self):
        snap = Histogram("h", buckets=(1.0,)).snapshot()
        assert snap["count"] == 0
        assert "p99" not in snap and "min" not in snap


class TestHistogramReservoir:
    def test_cap_must_be_positive(self):
        with pytest.raises(ValueError, match="max_observations"):
            Histogram("h", buckets=(1.0,), max_observations=0)

    def test_exact_below_the_cap(self):
        hist = Histogram("h", buckets=(100.0,), max_observations=50)
        values = [float(v) for v in range(40)]
        for value in values:
            hist.observe(value)
        assert not hist.sampled
        assert "sampled" not in hist.snapshot()
        for q in (50, 95, 99):
            assert hist.percentile(q) == serve_percentile(values, q)

    def test_reservoir_bounds_memory_and_flags_sampling(self):
        cap = 64
        hist = Histogram("h", buckets=(1e6,), max_observations=cap)
        for value in range(1000):
            hist.observe(float(value))
        assert len(hist._values) == cap
        assert hist.sampled
        assert hist.snapshot()["sampled"] is True
        # exact aggregates survive the sampling
        assert hist.count == 1000
        assert hist.sum == sum(float(v) for v in range(1000))
        assert hist.snapshot()["min"] == 0.0
        assert hist.snapshot()["max"] == 999.0
        # the estimate is drawn from real observations
        assert hist.percentile(50) in set(float(v) for v in range(1000))

    def test_reservoir_is_deterministic_per_name(self):
        def build(name):
            hist = Histogram(name, buckets=(1e6,), max_observations=16)
            for value in range(500):
                hist.observe(float(value))
            return hist

        assert build("a")._values == build("a")._values
        # seeded from the name: a different metric samples differently
        assert build("a")._values != build("b")._values

    def test_registry_passes_the_cap_through(self):
        registry = MetricsRegistry()
        hist = registry.histogram("capped", max_observations=8)
        for value in range(100):
            hist.observe(float(value))
        assert registry.histogram("capped").sampled
        snap = json.loads(json.dumps(registry.to_json()))
        assert snap["capped"]["sampled"] is True

    def test_uncapped_default_keeps_everything(self):
        hist = Histogram("h", buckets=(1e6,))
        for value in range(1000):
            hist.observe(float(value))
        assert len(hist._values) == 1000
        assert not hist.sampled


class TestPrometheusSanitization:
    PROM_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

    @pytest.mark.parametrize(
        "raw",
        [
            "serve.latency.p99_ms",
            "weird-metric@host/path",
            "0starts.with.digit",
            "spaces in name",
            "unicode.mñtric",
        ],
    )
    def test_prom_name_round_trip(self, raw):
        prom = _prom_name(raw)
        assert self.PROM_NAME.match(prom), prom
        # idempotent: sanitizing a sanitized name changes nothing
        assert _prom_name(prom) == prom

    def test_scrape_of_weird_names_is_well_formed(self):
        registry = MetricsRegistry()
        registry.counter("weird-metric@host/path", help="w").inc()
        registry.counter("0starts.with.digit").inc()
        text = registry.prometheus_text()
        for line in text.splitlines():
            if line.startswith("#") or not line:
                continue
            name = line.split("{")[0].split(" ")[0]
            assert self.PROM_NAME.match(name), line

    def test_help_escaping(self):
        assert _escape_help('a\\b\nc"d') == 'a\\\\b\\nc\\"d'

    def test_help_with_newline_backslash_quote_stays_one_line(self):
        registry = MetricsRegistry()
        registry.counter(
            "tricky", help='first\nsecond \\ "quoted"'
        ).inc()
        text = registry.prometheus_text()
        (help_line,) = [
            line for line in text.splitlines() if line.startswith("# HELP")
        ]
        assert help_line == (
            '# HELP tricky first\\nsecond \\\\ \\"quoted\\"'
        )


# ---------------------------------------------------------------------------
# Logger
# ---------------------------------------------------------------------------


class TestLogger:
    def test_quiet_suppresses_stdout_keeps_stderr(self, capsys):
        obslog.configure(obslog.QUIET)
        log = obslog.get_logger("t")
        log.info("progress")
        log.error("broken")
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "broken" in captured.err

    def test_debug_gated_behind_verbose(self, capsys):
        log = obslog.get_logger("t")
        obslog.configure(obslog.INFO)
        log.debug("hidden")
        obslog.configure(obslog.DEBUG)
        log.debug("shown")
        out = capsys.readouterr().out
        assert "hidden" not in out and "[t] shown" in out

    def test_fields_append_key_value(self, capsys):
        obslog.configure(obslog.INFO)
        obslog.get_logger().info("wrote", path="x.json", n=2)
        assert "wrote path=x.json n=2" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# GEMM profiler (the eval-layer hooks)
# ---------------------------------------------------------------------------


class TestGemmProfiler:
    def test_records_serial_and_parallel_evaluations(self):
        from repro.eval.harness import (
            default_context,
            exo_gemm_breakdown,
            exo_parallel_breakdown,
        )

        profiler = GemmProfiler()
        with obs_profile.using(profiler):
            exo_gemm_breakdown(64, 48, 64)
            exo_parallel_breakdown(256, 256, 256, 2, ctx=default_context())
        kinds = {r["kind"] for r in profiler.records}
        assert kinds == {"serial", "parallel"}
        parallel = [r for r in profiler.records if r["kind"] == "parallel"]
        assert parallel[-1]["threads"] == 2
        assert parallel[-1]["pc_ways"] >= 1
        assert "x" in parallel[-1]["partition"]
        for record in profiler.records:
            assert record["total_cycles"] > 0
            assert record["compute_cycles"] > 0

    def test_inactive_profiler_records_nothing(self):
        from repro.eval.harness import exo_gemm_breakdown

        profiler = GemmProfiler()
        exo_gemm_breakdown(64, 48, 64)
        assert profiler.records == []
        assert obs_profile.ACTIVE is None

    def test_profiler_feeds_tracer_and_metrics(self):
        from repro.eval.harness import exo_gemm_breakdown

        obs = Obs(tracer=Tracer(), metrics=MetricsRegistry())
        profiler = GemmProfiler(tracer=obs.tracer, metrics=obs.metrics)
        with obs_profile.using(profiler):
            exo_gemm_breakdown(64, 48, 64)
        events = [e for e in obs.tracer.events() if e["ph"] == "X"]
        assert any(e["name"] == "gemm 64x48x64" for e in events)
        assert obs.metrics["gemm.evaluations.serial"].value >= 1
        assert obs.metrics["gemm.eval_us"].count >= 1


# ---------------------------------------------------------------------------
# CLI integration: serve trace determinism, tune obs outputs
# ---------------------------------------------------------------------------


SERVE_ARGS = [
    "--machine", "carmel",
    "--model", "resnet50",
    "--rate", "40",
    "--duration", "200",
    "--slo-p99", "200ms",
    "--replicas", "2",
    "--threads", "2",
    "--max-batch", "2",
    "--quiet",
]


class TestServeCliObs:
    def test_trace_is_byte_identical_across_runs(self, tmp_path):
        blobs = []
        for run in ("a", "b"):
            outdir = tmp_path / run
            rc = serve_main(
                [
                    str(outdir),
                    *SERVE_ARGS,
                    "--trace", str(outdir / "serve.trace.json"),
                    "--metrics", str(outdir / "serve.metrics.json"),
                ]
            )
            assert rc == 0
            blobs.append(
                tuple(
                    (outdir / name).read_bytes()
                    for name in (
                        "serve.trace.json",
                        "serve.trace.jsonl",
                        "serve.metrics.json",
                        "serve.metrics.prom",
                    )
                )
            )
        assert blobs[0] == blobs[1]

    def test_trace_schema_spans_and_counters(self, tmp_path):
        trace_path = tmp_path / "serve.trace.json"
        rc = serve_main(
            [str(tmp_path), *SERVE_ARGS, "--trace", str(trace_path)]
        )
        assert rc == 0
        assert validate_trace_file(trace_path) == []
        assert validate_trace_file(tmp_path / "serve.trace.jsonl") == []
        events = json.loads(trace_path.read_text())["traceEvents"]
        names = {e["name"] for e in events}
        assert {"arrive", "queued", "complete", "batch"} <= names
        assert "queue_depth" in names
        queued = [e for e in events if e["name"] == "queued"]
        assert all(e["ph"] == "X" and e["dur"] >= 0 for e in queued)
        assert any(
            e["name"] == "thread_name" and e["ph"] == "M" for e in events
        )

    def test_obs_does_not_change_report_bytes(self, tmp_path):
        plain = tmp_path / "plain"
        traced = tmp_path / "traced"
        assert serve_main([str(plain), *SERVE_ARGS]) == 0
        assert (
            serve_main(
                [
                    str(traced),
                    *SERVE_ARGS,
                    "--trace", str(traced / "serve.trace.json"),
                ]
            )
            == 0
        )
        name = "serve_carmel_resnet50.json"
        assert (plain / name).read_bytes() == (traced / name).read_bytes()

    def test_metrics_summarize_the_run(self, tmp_path):
        metrics_path = tmp_path / "serve.metrics.json"
        rc = serve_main(
            [str(tmp_path), *SERVE_ARGS, "--metrics", str(metrics_path)]
        )
        assert rc == 0
        snap = json.loads(metrics_path.read_text())
        assert snap["serve.requests"]["value"] > 0
        assert snap["serve.batches"]["value"] > 0
        latency = snap["serve.latency_ms"]
        assert latency["count"] == snap["serve.requests"]["value"]
        assert latency["p50"] <= latency["p99"]


class TestTuneCliObs:
    def test_trace_and_metrics_outputs_validate(self, tmp_path, capsys):
        rc = tune_main(
            [
                "--machines", "neon",
                "--shapes", "64x48x64",
                "--cache-dir", str(tmp_path / "tunecache"),
                "--out", str(tmp_path / "art.json"),
                "--trace", str(tmp_path / "tune.trace.json"),
                "--metrics", str(tmp_path / "tune.metrics.json"),
                "--quiet",
            ]
        )
        assert rc == 0
        capsys.readouterr()
        assert validate_trace_file(tmp_path / "tune.trace.json") == []
        events = json.loads(
            (tmp_path / "tune.trace.json").read_text()
        )["traceEvents"]
        assert any(e["name"] == "sweep" for e in events)
        assert any(e["name"].startswith("chunk neon") for e in events)
        snap = json.loads((tmp_path / "tune.metrics.json").read_text())
        assert snap["tune.jobs_total"]["value"] > 0
        assert snap["tune.cache_misses"]["value"] > 0
        assert snap["tune.cache_hits"]["value"] == 0
        assert snap["tune.modelled_evaluations"]["value"] > 0
        assert "gemm.evaluations.serial" not in snap  # no profiler here


class TestObsBundle:
    def test_obs_from_cli_disabled_is_none(self):
        assert obs_from_cli(None, None) is None

    def test_obs_from_cli_virtual_time(self):
        obs = obs_from_cli("t.json", None, virtual_time=True)
        assert isinstance(obs.tracer.clock, VirtualClock)
        assert obs.metrics_path is None

    def test_write_outputs_covers_both_sinks(self, tmp_path):
        clock = VirtualClock()
        obs = Obs(
            tracer=Tracer(clock=clock),
            metrics=MetricsRegistry(),
            trace_path=tmp_path / "o.trace.json",
            metrics_path=tmp_path / "o.metrics.json",
        )
        with obs.tracer.span("s"):
            clock.advance_to_us(2.0)
        obs.metrics.counter("c").inc()
        written = {p.name for p in obs.write_outputs()}
        assert written == {
            "o.trace.json",
            "o.trace.jsonl",
            "o.metrics.json",
            "o.metrics.prom",
        }
