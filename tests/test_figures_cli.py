"""Tests for the ASCII figure renderer and the evaluation CLI."""

from __future__ import annotations


import pytest

from repro.eval.figures import bar_chart, line_chart, sparkline


SAMPLE = [
    {"shape": "8x12", "NEON": 28.2, "BLIS": 30.1, "EXO": 30.3},
    {"shape": "4x4", "NEON": 4.7, "BLIS": 5.0, "EXO": 18.3},
]


class TestBarChart:
    def test_contains_labels_and_values(self):
        text = bar_chart(SAMPLE, x="shape", series=["NEON", "BLIS", "EXO"])
        assert "8x12" in text and "4x4" in text
        assert "30.30" in text and "4.70" in text

    def test_bars_scale_with_values(self):
        text = bar_chart(SAMPLE, x="shape", series=["NEON", "EXO"], width=20)
        lines = [ln for ln in text.splitlines() if "EXO" in ln]
        big = lines[0].count("█")
        small = lines[1].count("█")
        assert big > small

    def test_title(self):
        text = bar_chart(SAMPLE, x="shape", series=["NEON"], title="Fig X")
        assert text.startswith("Fig X")

    def test_empty(self):
        assert bar_chart([], x="x", series=["y"]) == "(no data)"

    def test_line_chart_alias(self):
        assert "8x12" in line_chart(SAMPLE, x="shape", series=["NEON"])


class TestSparkline:
    def test_monotone_series(self):
        s = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert s[0] == "▁" and s[-1] == "█"

    def test_flat_series(self):
        s = sparkline([3, 3, 3])
        assert len(set(s)) == 1

    def test_empty(self):
        assert sparkline([]) == ""


class TestEvalCli:
    @pytest.mark.slow
    def test_cli_writes_all_reports(self, tmp_path):
        from repro.eval.__main__ import main

        rc = main([str(tmp_path)])
        assert rc == 0
        names = {p.name for p in tmp_path.iterdir()}
        expected = {
            "fig13_solo.txt",
            "fig14_square.txt",
            "fig15_resnet_layers.txt",
            "fig16_resnet_time.txt",
            "fig17_vgg_layers.txt",
            "fig18_vgg_time.txt",
            "tables.txt",
            "SUMMARY.txt",
        }
        assert expected <= names
        summary = (tmp_path / "SUMMARY.txt").read_text()
        assert "Fig 16: finishing order ALG+EXO" in summary
        tables = (tmp_path / "tables.txt").read_text()
        assert "12544" in tables and "50176" in tables
