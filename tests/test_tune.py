"""Tests for the repro.tune subsystem: space, cache, executor, CLI, and
the cache-delegating kernel selection in the registry."""

from __future__ import annotations

import dataclasses
import json
from types import SimpleNamespace

import pytest

from repro import tune
from repro.isa.machine import CARMEL, RVV_EDGE_VLEN128
from repro.isa.targets import ISA_TARGETS, machine_fingerprint, target
from repro.tune.cache import TuneCache, TunedBreakdown, cache_key
from repro.tune.executor import run_jobs
from repro.tune.space import (
    TuneJob,
    candidate_tiles,
    enumerate_space,
    enumerate_tiles,
    fallback_tile,
    problem_set,
)
from repro.ukernel.registry import select_kernel_for

FAMILY4 = target("neon").family  # the paper's lanes=4 grid, (8, 12)...(1, 4)


class TestSpace:
    def test_tiles_respect_problem_bounds(self):
        tiles = enumerate_tiles(FAMILY4, 6, 50)
        assert tiles
        assert all(mr <= 6 and nr <= 50 for mr, nr in tiles)

    def test_deterministic_order_largest_area_first(self):
        tiles = enumerate_tiles(FAMILY4, 1024, 1024)
        assert tiles == enumerate_tiles(FAMILY4, 1024, 1024)
        areas = [mr * nr for mr, nr in tiles]
        assert areas == sorted(areas, reverse=True)
        assert tiles[0] == (8, 12)

    def test_vla_adds_clamped_tail_variants(self):
        packed = enumerate_tiles(FAMILY4, 6, 50)
        vla = enumerate_tiles(FAMILY4, 6, 50, vla=True)
        assert (6, 12) not in packed
        assert (6, 12) in vla
        assert set(packed) <= set(vla)

    def test_fallback_respects_bounds_packed(self):
        assert fallback_tile(FAMILY4, 3, 2) == (1, 4)
        assert fallback_tile(FAMILY4, 6, 2) == (4, 4)

    def test_fallback_is_exact_on_vla(self):
        assert fallback_tile(FAMILY4, 3, 2, vla=True) == (3, 2)
        assert fallback_tile(FAMILY4, 100, 2, vla=True) == (8, 2)

    def test_candidate_tiles_never_empty(self):
        assert candidate_tiles(FAMILY4, 2, 2) == ((1, 4),)

    def test_enumerate_space_is_reproducible(self):
        problems = ((96, 96, 96), (64, 48, 64))
        jobs = enumerate_space(("rvv128", "neon"), problems)
        assert jobs == enumerate_space(("rvv128", "neon"), problems)
        assert {j.isa for j in jobs} == {"neon", "rvv128"}

    def test_enumerate_space_all_covers_registry(self):
        from repro.isa.targets import ISA_TARGETS

        jobs = enumerate_space(("all",), ((256, 256, 256),))
        assert {j.isa for j in jobs} == set(ISA_TARGETS)

    def test_problem_set_specs(self):
        assert problem_set("square") == tune.DEFAULT_SQUARES
        assert (12544, 64, 147) in problem_set("dnn")
        assert problem_set("64x48x64,8x8x8") == ((64, 48, 64), (8, 8, 8))
        with pytest.raises(ValueError):
            problem_set("64x48")


class TestCache:
    def test_key_digest_is_stable_and_content_addressed(self):
        k1 = cache_key(CARMEL, (8, 12), (256, 256, 256))
        k2 = cache_key(CARMEL, (8, 12), (256, 256, 256))
        assert k1.digest == k2.digest
        assert len(k1.digest) == 64
        assert cache_key(CARMEL, (8, 8), (256, 256, 256)).digest != k1.digest
        assert cache_key(CARMEL, (8, 12), (256, 256, 512)).digest != k1.digest

    def test_machine_parameters_invalidate_the_key(self):
        base = cache_key(CARMEL, (8, 12), (256, 256, 256))
        faster = dataclasses.replace(CARMEL, freq_ghz=2.4)
        assert machine_fingerprint(faster) != machine_fingerprint(CARMEL)
        assert cache_key(faster, (8, 12), (256, 256, 256)).digest != base.digest

    def test_target_cache_key_fields(self):
        fields = target("rvv128").cache_key_fields()
        assert fields["isa"] == "rvv128"
        assert fields["vlen"] == 128
        assert fields["machine"] == machine_fingerprint(RVV_EDGE_VLEN128)

    def test_roundtrip_and_miss_counting(self, tmp_path):
        cache = TuneCache(tmp_path)
        key = cache_key(CARMEL, (8, 12), (64, 48, 64))
        assert cache.get(key) is None
        record = {
            "compute_cycles": 100.0,
            "pack_cycles": 10.0,
            "c_stall_cycles": 1.0,
            "dram_limit_cycles": 50.0,
            "flops": 2 * 64 * 48 * 64,
            "freq_ghz": 2.3,
            "total_cycles": 111.0,
            "gflops": 8.1,
        }
        cache.put(key, record)
        assert cache.get(key) == record
        assert (cache.hits, cache.misses) == (1, 1)
        assert len(cache) == 1

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        cache = TuneCache(tmp_path)
        key = cache_key(CARMEL, (8, 12), (64, 48, 64))
        cache.put(key, {"total_cycles": 1.0})
        cache.path_for(key).write_text("{not json")
        assert cache.get(key) is None

    def test_corrupt_entry_counts_as_invalidation(self, tmp_path):
        cache = TuneCache(tmp_path)
        key = cache_key(CARMEL, (8, 12), (64, 48, 64))
        cache.put(key, {"total_cycles": 1.0})  # incomplete record
        assert cache.get(key) is None
        cache.path_for(key).write_text("{not json")
        assert cache.get(key) is None
        assert cache.invalidations == 2
        assert cache.stats() == {
            "cache_hits": 0,
            "cache_misses": 2,
            "cache_invalidations": 2,
        }
        assert "invalidations=2" in repr(cache)

    def test_cached_breakdown_reproduces_totals(self, registry):
        from repro.eval.harness import exo_gemm_breakdown
        from repro.tune.cache import (
            breakdown_from_record,
            record_from_breakdown,
        )

        b = exo_gemm_breakdown(96, 96, 96, main=(8, 12))
        record = json.loads(json.dumps(record_from_breakdown(b)))
        cached = breakdown_from_record(record)
        assert cached.total_cycles == b.total_cycles
        assert cached.gflops == b.gflops
        assert cached.seconds == b.seconds


class TestExecutor:
    PROBLEMS = ((96, 96, 96), (64, 48, 64))

    def test_serial_records_in_job_order(self):
        jobs = enumerate_space(("neon",), self.PROBLEMS)
        records = run_jobs(jobs)
        assert len(records) == len(jobs)
        assert all(r["total_cycles"] > 0 for r in records)

    def test_warm_cache_run_performs_zero_breakdown_calls(self, tmp_path):
        cache = TuneCache(tmp_path)
        jobs = enumerate_space(("neon", "rvv128"), self.PROBLEMS)
        cold = run_jobs(jobs, cache=cache)
        assert cache.misses == len(jobs)
        tune.reset_breakdown_calls()
        warm = run_jobs(jobs, cache=cache)
        assert tune.breakdown_calls() == 0
        assert warm == cold

    def test_parallel_matches_serial_exactly(self, tmp_path):
        jobs = enumerate_space(("neon",), self.PROBLEMS)
        serial = run_jobs(jobs)
        parallel = run_jobs(jobs, workers=2, cache=TuneCache(tmp_path))
        assert parallel == serial


class TestSweep:
    @pytest.mark.smoke
    @pytest.mark.parametrize("isa", sorted(ISA_TARGETS))
    def test_sweep_agrees_with_serial_selection(self, isa):
        problems = ((96, 96, 96),)
        artifact = tune.sweep((isa,), problems)
        machine = target(isa).machine
        for m, n, k in problems:
            tuned, entry = tune.best_kernel(artifact, isa, m, n, k)
            shape, breakdown = select_kernel_for(m, n, k, machine=machine)
            assert tuned == shape
            assert entry["total_cycles"] == breakdown.total_cycles

    def test_artifact_roundtrip(self, tmp_path):
        artifact = tune.sweep(("neon",), ((64, 48, 64),))
        path = tune.save_artifact(artifact, tmp_path / "art.json")
        assert tune.load_artifact(path) == artifact

    def test_cli_cold_then_warm(self, tmp_path, capsys):
        from repro.tune.__main__ import main

        args = [
            "--machines", "neon",
            "--shapes", "64x48x64",
            "--workers", "0",
            "--cache-dir", str(tmp_path / "tunecache"),
            "--out", str(tmp_path / "art.json"),
        ]
        assert main([*args, "--verify"]) == 0
        cold = tune.load_artifact(tmp_path / "art.json")
        # warm run WITHOUT --verify, so the counter assertion is strict:
        # --verify itself re-models serially outside the counter
        assert main(args) == 0
        assert tune.breakdown_calls() == 0
        warm = tune.load_artifact(tmp_path / "art.json")
        # cache statistics are per-sweep deltas: the cold run evaluated
        # everything, the warm run answered entirely from the cache
        assert cold["cache_misses"] > 0 and cold["cache_hits"] == 0
        assert warm["cache_hits"] > 0 and warm["cache_misses"] == 0
        assert warm["cache_invalidations"] == 0
        strip = lambda art: {  # noqa: E731
            k: v for k, v in art.items() if not k.startswith("cache_")
        }
        assert strip(warm) == strip(cold)
        out = capsys.readouterr().out
        assert "agrees with serial select_kernel_for" in out

    def test_cli_rejects_unknown_machine(self, tmp_path):
        from repro.tune.__main__ import main

        assert main(["--machines", "vax", "--out", str(tmp_path / "a")]) == 2


class TestSelectKernelFor:
    def test_tie_breaks_smallest_area_then_lexicographic(self, monkeypatch):
        tie = SimpleNamespace(total_cycles=1000.0)
        monkeypatch.setattr(
            "repro.eval.harness.exo_gemm_breakdown",
            lambda *a, **kw: tie,
        )
        shape, _ = select_kernel_for(
            64, 64, 64, candidates=((8, 8), (8, 4), (4, 8))
        )
        assert shape == (4, 8)

    def test_explicit_candidates_fallback_stays_in_the_set(self):
        # a caller-restricted candidate set is honoured even when
        # nothing fits: smallest area of *their* tiles, not the family's
        shape, breakdown = select_kernel_for(
            4, 4, 64, candidates=((8, 12), (8, 8))
        )
        assert shape == (8, 8)
        assert breakdown.total_cycles > 0

    def test_fallback_respects_bounds_on_packed_simd(self):
        shape, breakdown = select_kernel_for(6, 2, 64)
        assert shape == (4, 4)
        assert breakdown.total_cycles > 0

    def test_fallback_uses_vla_tail_path_on_rvv(self):
        shape, breakdown = select_kernel_for(
            3, 2, 64, machine=RVV_EDGE_VLEN128
        )
        assert shape == (3, 2)
        assert breakdown.total_cycles > 0

    def test_delegates_to_active_cache(self, tmp_path, monkeypatch):
        from repro.eval import harness

        machine = target("rvv128").machine
        with tune.using(TuneCache(tmp_path)) as cache:
            first = select_kernel_for(96, 96, 96, machine=machine)
            assert len(cache) > 0
            calls = {"n": 0}
            real = harness.exo_gemm_breakdown

            def counting(*args, **kwargs):
                calls["n"] += 1
                return real(*args, **kwargs)

            monkeypatch.setattr(harness, "exo_gemm_breakdown", counting)
            second = select_kernel_for(96, 96, 96, machine=machine)
        assert tune.active_cache() is None
        assert calls["n"] == 0
        assert second[0] == first[0]
        assert isinstance(second[1], TunedBreakdown)
        assert second[1].total_cycles == first[1].total_cycles

    def test_custom_registry_never_touches_the_cache(self, tmp_path):
        # cache keys identify timings by machine only; a caller-supplied
        # registry must neither read nor poison the machine's entries
        from repro.ukernel.registry import KernelRegistry

        custom = KernelRegistry()
        with tune.using(TuneCache(tmp_path / "tc")) as cache:
            select_kernel_for(64, 48, 64, machine=CARMEL, registry=custom)
            assert len(cache) == 0
            assert cache.hits == 0

    def test_cached_and_uncached_selection_agree(self, tmp_path):
        uncached = select_kernel_for(256, 256, 256, machine=CARMEL)
        with tune.using(tmp_path / "tunecache"):
            cold = select_kernel_for(256, 256, 256, machine=CARMEL)
            warm = select_kernel_for(256, 256, 256, machine=CARMEL)
        assert cold[0] == uncached[0] == warm[0]
        assert warm[1].total_cycles == uncached[1].total_cycles


def _job(isa="neon", mr=8, nr=12, m=64, n=48, k=64):
    return TuneJob(isa=isa, mr=mr, nr=nr, m=m, n=n, k=k)


class TestJob:
    def test_tile_and_problem_views(self):
        job = _job()
        assert job.tile == (8, 12)
        assert job.problem == (64, 48, 64)
