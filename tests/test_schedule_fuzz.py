"""Property-based schedule fuzzing.

The strongest invariant in the system: *no sequence of scheduling
primitives may change a procedure's semantics*.  Hypothesis drives random
transform sequences against the reference micro-kernel; whatever subset of
transforms applies cleanly, the result must compute the same GEMM.
"""

from __future__ import annotations

import sys
from pathlib import Path

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

sys.path.insert(0, str(Path(__file__).parent))

from helpers import assert_equivalent

from repro.core import Procedure
from repro.core.prelude import ReproError
from repro.core.scheduling import (
    divide_loop,
    reorder_loops,
    simplify,
    unroll_loop,
)
from repro.ukernel.generator import make_reference_kernel


def _specialized(mr=8, nr=12) -> Procedure:
    return make_reference_kernel().partial_eval(mr, nr)


# a palette of transform attempts; each either applies or raises cleanly
TRANSFORMS = [
    ("divide_i", lambda p: divide_loop(p, "i", 4, ["it", "itt"], perfect=True)),
    ("divide_j", lambda p: divide_loop(p, "j", 4, ["jt", "jtt"], perfect=True)),
    ("divide_i2", lambda p: divide_loop(p, "i", 2, ["ih", "il"], perfect=True)),
    ("divide_j3", lambda p: divide_loop(p, "j", 3, ["jh", "jl"], perfect=True)),
    ("reorder_ji", lambda p: reorder_loops(p, "j i")),
    ("reorder_ij", lambda p: reorder_loops(p, "i j")),
    ("reorder_kj", lambda p: reorder_loops(p, "k j")),
    ("unroll_i", lambda p: unroll_loop(p, "i")),
    ("unroll_it", lambda p: unroll_loop(p, "it")),
    ("unroll_jt", lambda p: unroll_loop(p, "jt")),
    ("simplify", simplify),
    ("tail_i", lambda p: divide_loop(p, "i", 3, ["ia", "ib"])),
    ("tail_j", lambda p: divide_loop(p, "j", 5, ["ja", "jb"])),
]


@given(
    st.lists(st.integers(0, len(TRANSFORMS) - 1), min_size=1, max_size=6),
    st.integers(0, 1000),
)
@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_random_schedules_preserve_semantics(choices, seed):
    reference = _specialized()
    p = reference
    applied = []
    for idx in choices:
        name, fn = TRANSFORMS[idx]
        try:
            p = fn(p)
            applied.append(name)
        except ReproError:
            continue  # transform not applicable at this point — fine
    assert_equivalent(reference, p, sizes={"KC": 3}, seed=seed, atol=1e-4)


@given(st.sampled_from([(4, 4), (8, 4), (4, 8), (8, 8)]))
@settings(max_examples=8, deadline=None)
def test_divide_then_unroll_any_shape(shape):
    mr, nr = shape
    reference = _specialized(mr, nr)
    p = divide_loop(reference, "i", 4, ["it", "itt"], perfect=True)
    p = unroll_loop(p, "itt")
    p = simplify(p)
    assert_equivalent(reference, p, sizes={"KC": 4})


@given(st.integers(2, 6), st.integers(1, 24))
@settings(max_examples=30, deadline=None)
def test_tail_division_arbitrary_quotients(quotient, extent):
    from repro.core import DRAM, proc

    @proc
    def fill(N: size, x: f32[N] @ DRAM):
        for i in seq(0, N):
            x[i] = x[i] * 2.0 + 1.0

    p = fill.partial_eval(extent)
    p2 = divide_loop(p, "i", quotient, ["a", "b"])
    assert_equivalent(p, p2, sizes={})
