"""Tests for the live asyncio serving plane (repro.serve.plane).

The load-bearing invariants:

* the virtual timeline is a sound discrete-event scheduler: timers
  wake in order, deadlines race waits correctly, and a wait nothing
  will fire is a diagnosed deadlock, not a hang;
* two identical sim-controller runs are **byte-identical** — reports,
  Chrome traces, and metrics — the property that makes the plane
  testable without hardware;
* with admission disabled, the live plane reproduces the offline
  batcher (``simulate_serving``) decision for decision: same dispatch
  and completion time and same batch size for every request;
* under an infeasible SLO the admission gates shed load, every request
  is accounted (admitted + shed == arrived), and the shed counters
  reach the metrics registry;
* the stdlib HTTP front door answers /healthz, /v1/infer (200 and
  429), and /metrics on a real socket.
"""

from __future__ import annotations

import json
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import obs as obslib
from repro.obs.context import trace_id_for
from repro.isa.machine import CARMEL, machine_by_name
from repro.serve import (
    DEADLINE,
    AdmissionPolicy,
    BatchPolicy,
    MockController,
    PoolSpec,
    Request,
    ServePlane,
    SheddedRequest,
    VirtualTimeline,
    WallTimeline,
    assign_models,
    controller_for,
    estimated_latency_ms,
    live_report,
    parse_admission_spec,
    run_http,
    run_trace,
    save_report,
    simulate_serving,
    synthetic_trace,
    timeline_for,
)
from repro.serve.__main__ import main as serve_main
from repro.serve.__main__ import parse_duration_ms


def _mock_plane(
    specs,
    admission=AdmissionPolicy(),
    service_ms=10.0,
    obs=None,
):
    timeline = VirtualTimeline()
    return ServePlane(
        CARMEL,
        specs,
        timeline,
        controller="mock",
        admission=admission,
        obs=obs,
        mock_service_ms=service_ms,
    )


class TestVirtualTimeline:
    def test_sleepers_wake_in_time_order(self):
        timeline = VirtualTimeline()
        order = []

        async def sleeper(wake_ms):
            await timeline.sleep_until(wake_ms)
            order.append((wake_ms, timeline.now_ms()))

        async def main():
            tasks = [
                timeline.spawn(sleeper(ms)) for ms in (30.0, 10.0, 20.0)
            ]
            for task in tasks:
                await timeline.join(task)

        timeline.execute(main())
        assert order == [(10.0, 10.0), (20.0, 20.0), (30.0, 30.0)]

    def test_wait_returns_fired_value(self):
        timeline = VirtualTimeline()

        async def main():
            future = timeline.create_future()

            async def firer():
                await timeline.sleep_until(5.0)
                timeline.fire(future, "payload")

            timeline.spawn(firer())
            return await timeline.wait(future)

        assert timeline.execute(main()) == "payload"

    def test_deadline_beats_a_never_fired_wait(self):
        timeline = VirtualTimeline()

        async def main():
            future = timeline.create_future()
            got = await timeline.wait_or_deadline(future, 7.0)
            return got, timeline.now_ms()

        got, now = timeline.execute(main())
        assert got is DEADLINE
        assert now == 7.0

    def test_fire_beats_a_later_deadline(self):
        timeline = VirtualTimeline()

        async def main():
            future = timeline.create_future()

            async def firer():
                await timeline.sleep_until(3.0)
                timeline.fire(future, "won")

            timeline.spawn(firer())
            got = await timeline.wait_or_deadline(future, 100.0)
            return got, timeline.now_ms()

        got, now = timeline.execute(main())
        assert got == "won"
        assert now == 3.0

    def test_unfireable_wait_is_a_diagnosed_deadlock(self):
        timeline = VirtualTimeline()

        async def main():
            await timeline.wait(timeline.create_future())

        with pytest.raises(RuntimeError, match="virtual-time deadlock"):
            timeline.execute(main())

    def test_timeline_for_maps_controllers(self):
        assert timeline_for("sim").kind == "virtual"
        assert timeline_for("real").kind == "wall"
        assert timeline_for("mock").kind == "wall"


class TestControllers:
    def test_mock_controller_prices_affinely(self):
        ctrl = MockController(
            VirtualTimeline(), base_ms=2.0, per_item_ms=0.5
        )
        assert ctrl.service_estimate_ms(4) == 4.0

    def test_mock_controller_rejects_nonpositive_service(self):
        with pytest.raises(ValueError, match="must be positive"):
            MockController(VirtualTimeline(), base_ms=0.0)

    def test_sim_and_real_need_an_executor(self):
        timeline = VirtualTimeline()
        for kind in ("sim", "real"):
            with pytest.raises(ValueError, match="needs a ModelExecutor"):
                controller_for(kind, timeline)

    def test_unknown_controller_rejected(self):
        with pytest.raises(ValueError, match="unknown controller"):
            controller_for("hardware", VirtualTimeline())

    def test_execute_occupies_the_timeline(self):
        timeline = VirtualTimeline()
        ctrl = MockController(timeline, base_ms=8.0)

        async def main():
            service = await ctrl.execute(3)
            return service, timeline.now_ms()

        assert timeline.execute(main()) == (8.0, 8.0)


class TestAdmission:
    def test_policy_validation(self):
        with pytest.raises(ValueError, match="max_queue_depth"):
            AdmissionPolicy(max_queue_depth=-1)
        with pytest.raises(ValueError, match="deadline_ms"):
            AdmissionPolicy(deadline_ms=0.0)

    def test_enabled_flag(self):
        assert not AdmissionPolicy().enabled
        assert AdmissionPolicy(max_queue_depth=4).enabled
        assert AdmissionPolicy(deadline_ms=10.0).enabled

    def test_latency_projection(self):
        # 9 queued in batches of 4 -> 3 batches, +1 in flight = 4
        # batches over 2 replicas -> 2 waves of 50 ms
        assert (
            estimated_latency_ms(
                9,
                replicas=2,
                in_flight=1,
                max_batch=4,
                full_batch_service_ms=50.0,
            )
            == 100.0
        )

    def test_spec_parser(self):
        policy = parse_admission_spec(
            "depth=16,deadline=200ms", parse_duration_ms
        )
        assert policy.max_queue_depth == 16
        assert policy.deadline_ms == 200.0
        assert parse_admission_spec("none", parse_duration_ms) == (
            AdmissionPolicy()
        )

    def test_spec_parser_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown key 'dephts'"):
            parse_admission_spec("dephts=4", parse_duration_ms)
        with pytest.raises(ValueError, match="depth=N"):
            parse_admission_spec("whatever", parse_duration_ms)


class TestPoolValidation:
    def test_pool_spec_validation(self):
        with pytest.raises(ValueError, match="replicas"):
            PoolSpec("resnet50", replicas=0, threads=2)
        with pytest.raises(ValueError, match="max_batch"):
            PoolSpec("resnet50", replicas=1, threads=2, max_batch=0)
        with pytest.raises(ValueError, match="max_wait_ms"):
            PoolSpec(
                "resnet50", replicas=1, threads=2, max_wait_ms=-1.0
            )

    def test_oversubscribed_pools_rejected(self):
        # carmel has 8 cores; 3 replicas x 4 threads = 12 won't fit
        with pytest.raises(ValueError, match="shrink replicas x threads"):
            _mock_plane([PoolSpec("resnet50", replicas=3, threads=4)])

    def test_duplicate_pool_models_rejected(self):
        with pytest.raises(ValueError, match="duplicate pool models"):
            _mock_plane(
                [
                    PoolSpec("resnet50", 1, 2),
                    PoolSpec("resnet50", 1, 2),
                ]
            )

    def test_unknown_model_submission_rejected(self):
        plane = _mock_plane([PoolSpec("resnet50", 1, 2)])

        async def main():
            plane.start()
            with pytest.raises(ValueError, match="no pool serves"):
                plane.submit("vgg16")
            await plane.close()

        plane.timeline.execute(main())


class TestAssignModels:
    def test_single_model_mix_is_trivial(self):
        trace = synthetic_trace(50.0, 200.0, seed=0)
        tagged = assign_models(trace, {"resnet50": 1.0})
        assert all(model == "resnet50" for model, _ in tagged)
        assert tuple(req for _, req in tagged) == trace

    def test_weighted_mix_is_seeded_and_covers_models(self):
        trace = synthetic_trace(500.0, 2_000.0, seed=0)
        a = assign_models(trace, {"resnet50": 0.7, "vgg16": 0.3}, seed=1)
        b = assign_models(trace, {"resnet50": 0.7, "vgg16": 0.3}, seed=1)
        assert a == b
        c = assign_models(trace, {"resnet50": 0.7, "vgg16": 0.3}, seed=2)
        assert a != c
        models = [m for m, _ in a]
        assert models.count("resnet50") > models.count("vgg16") > 0

    def test_mix_validation(self):
        trace = synthetic_trace(10.0, 100.0, seed=0)
        with pytest.raises(ValueError, match="at least one model"):
            assign_models(trace, {})
        with pytest.raises(ValueError, match="must be positive"):
            assign_models(trace, {"resnet50": 0.0})


class TestLivePlaneBatching:
    """Mock-controller scenarios with exactly predictable schedules."""

    def _run(self, arrivals, spec, service_ms=10.0):
        plane = _mock_plane([spec], service_ms=service_ms)
        trace = tuple(
            Request(request_id=i, arrival_ms=ms)
            for i, ms in enumerate(arrivals)
        )
        return run_trace(plane, [(spec.model, r) for r in trace])

    def test_full_batch_dispatches_at_the_filling_arrival(self):
        result = self._run(
            [1.0, 2.0, 3.0],
            PoolSpec("resnet50", 1, 2, max_batch=3, max_wait_ms=50.0),
        )
        assert [b.size for b in result.batches] == [3]
        assert result.batches[0].dispatch_ms == 3.0
        assert all(s.completion_ms == 13.0 for s in result.served)

    def test_wait_expiry_closes_a_partial_batch(self):
        result = self._run(
            [1.0, 2.0, 40.0],
            PoolSpec("resnet50", 1, 2, max_batch=3, max_wait_ms=5.0),
        )
        assert [b.size for b in result.batches] == [2, 1]
        assert result.batches[0].dispatch_ms == 6.0  # head 1.0 + wait 5
        assert result.batches[1].dispatch_ms == 45.0

    def test_busy_replica_dispatches_backlog_immediately(self):
        # batch 1 occupies [1+2, 13]; requests 2..4 queue behind it and
        # go out as one batch the moment the replica frees
        result = self._run(
            [1.0, 4.0, 5.0, 6.0],
            PoolSpec("resnet50", 1, 2, max_batch=3, max_wait_ms=2.0),
        )
        assert [b.size for b in result.batches] == [1, 3]
        assert result.batches[1].dispatch_ms == 13.0

    def test_two_replicas_serve_concurrently(self):
        result = self._run(
            [0.5, 1.0],
            PoolSpec("resnet50", 2, 2, max_batch=1, max_wait_ms=0.0),
        )
        assert [b.size for b in result.batches] == [1, 1]
        dispatches = sorted(b.dispatch_ms for b in result.batches)
        assert dispatches == [0.5, 1.0]
        replicas = {b.replica for b in result.batches}
        assert replicas == {0, 1}


class TestOfflineParity:
    def test_live_sim_matches_simulate_serving(self):
        """The live plane replays the offline batcher's schedule.

        Same trace, same policy, same (memoized constant) service
        pricing: every request must dispatch and complete at the same
        instant with the same batch size.  Replica *indices* may
        legitimately differ when several replicas are idle, so they
        are not compared.
        """
        trace = synthetic_trace(120.0, 2_000.0, seed=5)
        policy = BatchPolicy(max_batch=4, max_wait_ms=3.0)

        def service(batch):
            return 6.0 + 1.5 * batch

        offline = simulate_serving(trace, 2, policy, service)

        spec = PoolSpec(
            "resnet50",
            replicas=2,
            threads=2,
            max_batch=policy.max_batch,
            max_wait_ms=policy.max_wait_ms,
        )
        timeline = VirtualTimeline()
        plane = ServePlane(
            CARMEL,
            [spec],
            timeline,
            controller="mock",
            mock_service_ms=1.0,
        )
        pool = plane.pools["resnet50"]
        pool.controller = MockController(
            timeline, base_ms=6.0, per_item_ms=1.5
        )
        live = run_trace(plane, [("resnet50", r) for r in trace])

        assert len(live.served) == len(offline.served)
        offline_by_id = {
            s.request.request_id: s for s in offline.served
        }
        for served in live.served:
            ref = offline_by_id[served.request_id]
            assert served.dispatch_ms == pytest.approx(ref.dispatch_ms)
            assert served.completion_ms == pytest.approx(
                ref.completion_ms
            )
            assert served.batch_size == ref.batch_size
        assert sorted(b.size for b in live.batches) == sorted(
            b.size for b in offline.batches
        )


class TestAdmissionOnThePlane:
    def test_queue_depth_gate_sheds_and_accounts(self):
        # one replica busy for 100 ms; depth cap 2 -> arrivals 4.. shed
        spec = PoolSpec(
            "resnet50", 1, 2, max_batch=1, max_wait_ms=0.0
        )
        plane = _mock_plane(
            [spec],
            admission=AdmissionPolicy(max_queue_depth=2),
            service_ms=100.0,
        )
        trace = tuple(
            Request(request_id=i, arrival_ms=1.0 + i) for i in range(8)
        )
        result = run_trace(plane, [("resnet50", r) for r in trace])
        assert result.arrived == 8
        assert len(result.served) + len(result.shed) == 8
        assert result.shed
        assert all(s.reason == "queue_depth" for s in result.shed)

    def test_deadline_gate_sheds_infeasible_load(self):
        spec = PoolSpec(
            "resnet50", 1, 2, max_batch=2, max_wait_ms=1.0
        )
        plane = _mock_plane(
            [spec],
            admission=AdmissionPolicy(deadline_ms=50.0),
            service_ms=80.0,  # one wave already misses 50 ms
        )
        trace = synthetic_trace(100.0, 500.0, seed=0)
        result = run_trace(plane, [("resnet50", r) for r in trace])
        assert result.served == ()
        assert len(result.shed) == len(trace) == result.arrived
        assert all(s.reason == "deadline" for s in result.shed)

    def test_shed_counters_reach_the_metrics_registry(self):
        obs = obslib.Obs()
        spec = PoolSpec("resnet50", 1, 2, max_batch=1, max_wait_ms=0.0)
        plane = _mock_plane(
            [spec],
            admission=AdmissionPolicy(max_queue_depth=1),
            service_ms=100.0,
            obs=obs,
        )
        trace = tuple(
            Request(request_id=i, arrival_ms=1.0 + i) for i in range(6)
        )
        result = run_trace(plane, [("resnet50", r) for r in trace])
        counters = {
            name: snap["value"]
            for name, snap in obs.metrics.to_json().items()
            if snap["type"] == "counter"
        }
        assert counters["serve.live.arrived"] == 6
        assert counters["serve.live.admitted"] == len(result.served)
        assert counters["serve.live.shed"] == len(result.shed)
        assert (
            counters["serve.live.shed.queue_depth"] == len(result.shed)
        )
        assert counters["serve.live.completed"] == len(result.served)


class TestByteDeterminism:
    def _run_once(self, tmp_path, tag):
        obs = obslib.obs_from_cli(
            tmp_path / f"{tag}.trace.json",
            tmp_path / f"{tag}.metrics.json",
            virtual_time=True,
        )
        spec = PoolSpec(
            "resnet50", 1, 2, max_batch=2, max_wait_ms=1.0
        )
        plane = _mock_plane(
            [spec],
            admission=AdmissionPolicy(deadline_ms=120.0),
            service_ms=40.0,
            obs=obs,
        )
        trace = synthetic_trace(60.0, 1_500.0, seed=3)
        result = run_trace(plane, [("resnet50", r) for r in trace])
        report = live_report(
            plane,
            result,
            machine_name="carmel",
            isa=CARMEL.isa,
            trace_info={"kind": "synthetic", "requests": len(trace)},
            slo_p99_ms=120.0,
        )
        report_path = save_report(report, tmp_path / f"{tag}.json")
        obs.write_outputs()
        return report_path, tmp_path / f"{tag}.trace.json"

    def test_two_sim_runs_are_byte_identical(self, tmp_path):
        report_a, trace_a = self._run_once(tmp_path, "a")
        report_b, trace_b = self._run_once(tmp_path, "b")
        assert report_a.read_bytes() == report_b.read_bytes()
        assert trace_a.read_bytes() == trace_b.read_bytes()

    def test_report_mixes_admits_and_sheds(self, tmp_path):
        report_path, _ = self._run_once(tmp_path, "c")
        report = json.loads(report_path.read_text())
        totals = report["totals"]
        assert totals["admitted"] > 0
        assert totals["shed"] > 0
        assert (
            totals["admitted"] + totals["shed"] == totals["arrived"]
        )
        assert report["per_model"]["resnet50"]["shed_reasons"] == {
            "deadline": totals["shed"]
        }


class TestSimControllerEndToEnd:
    def test_model_backed_plane_is_deterministic(self):
        def run_once():
            machine = machine_by_name("carmel")
            timeline = VirtualTimeline()
            plane = ServePlane(
                machine,
                [PoolSpec("resnet50", 2, 4, max_batch=4)],
                timeline,
                controller="sim",
                admission=AdmissionPolicy(deadline_ms=2_000.0),
            )
            trace = synthetic_trace(15.0, 1_500.0, seed=1)
            result = run_trace(plane, [("resnet50", r) for r in trace])
            report = live_report(
                plane,
                result,
                machine_name="carmel",
                isa=machine.isa,
                trace_info={"kind": "synthetic"},
                slo_p99_ms=2_000.0,
            )
            return json.dumps(report, sort_keys=True)

        assert run_once() == run_once()


class TestHttpFrontDoor:
    def _serve(self, admission, requests, slo=None):
        """Run the front door for a beat; return client-side answers."""
        obs = obslib.Obs()
        plane = ServePlane(
            CARMEL,
            [PoolSpec("resnet50", 1, 2, max_batch=2, max_wait_ms=1.0)],
            WallTimeline(),
            controller="mock",
            admission=admission,
            obs=obs,
            mock_service_ms=2.0,
            slo=slo,
        )
        bound = {}
        answers = []

        def client():
            deadline = time.monotonic() + 5.0
            while "addr" not in bound:
                if time.monotonic() > deadline:  # pragma: no cover
                    return
                time.sleep(0.005)
            host, port = bound["addr"]
            for path, body in requests:
                req = urllib.request.Request(
                    f"http://{host}:{port}{path}", data=body
                )
                try:
                    with urllib.request.urlopen(req, timeout=5) as resp:
                        answers.append((resp.status, resp.read()))
                except urllib.error.HTTPError as err:
                    answers.append((err.code, err.read()))

        thread = threading.Thread(target=client)
        thread.start()
        result = run_http(
            plane,
            port=0,
            duration_ms=1_000.0,
            ready=lambda addr: bound.update(addr=addr),
        )
        thread.join()
        return answers, result

    def test_healthz_infer_metrics_and_404(self):
        answers, result = self._serve(
            AdmissionPolicy(),
            [
                ("/healthz", None),
                ("/v1/infer", b'{"model": "resnet50"}'),
                ("/metrics", None),
                ("/nope", None),
            ],
        )
        assert [code for code, _ in answers] == [200, 200, 200, 404]
        health = json.loads(answers[0][1])
        assert health["status"] == "ok"
        served = json.loads(answers[1][1])
        assert served["model"] == "resnet50"
        assert served["batch_size"] >= 1
        assert b"serve_live_admitted 1" in answers[2][1]
        assert len(result.served) == 1

    def test_shed_is_a_429_with_reason(self):
        answers, result = self._serve(
            AdmissionPolicy(max_queue_depth=0),
            [("/v1/infer", b'{"model": "resnet50"}')],
        )
        code, body = answers[0]
        assert code == 429
        payload = json.loads(body)
        assert payload["error"] == "shed"
        assert payload["reason"] == "queue_depth"
        assert result.shed and not result.served

    def test_bad_model_is_a_400(self):
        answers, _ = self._serve(
            AdmissionPolicy(),
            [("/v1/infer", b'{"model": "alexnet"}')],
        )
        assert answers[0][0] == 400

    def test_http_refuses_the_virtual_timeline(self):
        plane = _mock_plane([PoolSpec("resnet50", 1, 2)])
        with pytest.raises(ValueError, match="wall timeline"):
            run_http(plane, duration_ms=1.0)

    def test_malformed_json_body_is_a_400(self):
        answers, result = self._serve(
            AdmissionPolicy(),
            [("/v1/infer", b"{not json")],
        )
        code, body = answers[0]
        assert code == 400
        assert json.loads(body)["error"] == "body is not JSON"
        assert result.arrived == 0  # rejected before admission

    def test_slo_endpoint_404_when_monitor_absent(self):
        answers, _ = self._serve(AdmissionPolicy(), [("/slo", None)])
        code, body = answers[0]
        assert code == 404
        assert "not enabled" in json.loads(body)["error"]

    def test_slo_endpoint_with_no_completed_requests(self):
        answers, _ = self._serve(
            AdmissionPolicy(),
            [("/slo", None)],
            slo=obslib.SloMonitor(threshold_ms=50.0),
        )
        code, body = answers[0]
        assert code == 200
        snap = json.loads(body)
        assert snap["totals"]["completed"] == 0
        assert snap["totals"]["error_rate"] == 0.0
        assert all(not alert["firing"] for alert in snap["alerts"])

    def test_slo_endpoint_reflects_served_traffic(self):
        answers, result = self._serve(
            AdmissionPolicy(),
            [
                ("/v1/infer", b'{"model": "resnet50"}'),
                ("/slo", None),
            ],
            slo=obslib.SloMonitor(threshold_ms=1_000.0),
        )
        assert [code for code, _ in answers] == [200, 200]
        snap = json.loads(answers[1][1])
        assert snap["totals"]["completed"] == len(result.served) == 1
        assert snap["totals"]["good"] == 1

    def test_oversized_body_is_a_413_without_reading_it(self):
        """A huge declared Content-Length is refused up front."""
        obs = obslib.Obs()
        plane = ServePlane(
            CARMEL,
            [PoolSpec("resnet50", 1, 2, max_batch=2, max_wait_ms=1.0)],
            WallTimeline(),
            controller="mock",
            admission=AdmissionPolicy(),
            obs=obs,
            mock_service_ms=2.0,
        )
        bound = {}
        answers = []

        def client():
            deadline = time.monotonic() + 5.0
            while "addr" not in bound:
                if time.monotonic() > deadline:  # pragma: no cover
                    return
                time.sleep(0.005)
            host, port = bound["addr"]
            with socket.create_connection((host, port), timeout=5) as sock:
                # declare a body we never send: the server must answer
                # from the headers alone
                sock.sendall(
                    b"POST /v1/infer HTTP/1.1\r\n"
                    b"Host: t\r\n"
                    b"Content-Length: 2000000\r\n"
                    b"\r\n"
                )
                response = b""
                while b"\r\n\r\n" not in response:
                    chunk = sock.recv(4096)
                    if not chunk:
                        break
                    response += chunk
                    if b"}" in response:
                        break
                answers.append(response)

        thread = threading.Thread(target=client)
        thread.start()
        result = run_http(
            plane,
            port=0,
            duration_ms=1_000.0,
            ready=lambda addr: bound.update(addr=addr),
        )
        thread.join()
        assert answers, "client never got a response"
        head, _, body = answers[0].partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 413 Payload Too Large")
        payload = json.loads(body)
        assert payload["error"] == "body too large"
        assert payload["limit_bytes"] == 1 << 20
        assert result.arrived == 0


class TestCausalChains:
    """The tentpole acceptance contract: complete chains, causal links."""

    def _traced_run(self, admission=AdmissionPolicy()):
        obs = obslib.Obs(
            tracer=obslib.Tracer(clock=obslib.VirtualClock())
        )
        plane = _mock_plane(
            [PoolSpec("resnet50", 1, 2, max_batch=4, max_wait_ms=2.0)],
            admission=admission,
            service_ms=5.0,
            obs=obs,
        )
        trace = synthetic_trace(30.0, 600.0, seed=5)
        result = run_trace(
            plane, [("resnet50", request) for request in trace]
        )
        by_request = {}
        batches = {}
        for event in obs.tracer.events():
            args = event.get("args") or {}
            if event["name"] == "batch" and event["ph"] == "X":
                batches[args["batch_id"]] = args
            elif "request_id" in args:
                by_request.setdefault(args["request_id"], {})[
                    event["name"]
                ] = args
        return result, by_request, batches

    def test_every_request_has_a_complete_causal_chain(self):
        result, by_request, batches = self._traced_run()
        assert result.served and len(by_request) == result.arrived
        for served in result.served:
            chain = by_request[served.request_id]
            assert set(chain) == {"arrive", "admit", "queued", "complete"}
            trace_id = trace_id_for(served.request_id)
            assert {c["trace_id"] for c in chain.values()} == {trace_id}
            # parent links walk the chain in causal order
            assert "parent_id" not in chain["arrive"]  # the root span
            assert chain["admit"]["parent_id"] == (
                chain["arrive"]["span_id"]
            )
            assert chain["queued"]["parent_id"] == (
                chain["admit"]["span_id"]
            )
            assert chain["complete"]["parent_id"] == (
                chain["queued"]["span_id"]
            )
            # the batch reference resolves to a real batch span
            batch = batches[chain["queued"]["batch_id"]]
            assert batch["size"] == served.batch_size
            assert "formed_ms" in batch

    def test_shed_requests_chain_arrive_to_shed(self):
        result, by_request, _ = self._traced_run(
            admission=AdmissionPolicy(max_queue_depth=1)
        )
        assert result.shed
        for shed in result.shed:
            chain = by_request[shed.request_id]
            assert set(chain) == {"arrive", "shed"}
            assert chain["shed"]["reason"] == shed.reason
            assert chain["shed"]["parent_id"] == (
                chain["arrive"]["span_id"]
            )

    def test_ids_are_deterministic_functions_of_the_request(self):
        _, first, _ = self._traced_run()
        _, second, _ = self._traced_run()
        assert first == second


class TestLiveCli:
    ARGS = [
        "--controller",
        "sim",
        "--arrivals",
        "mmpp:rates=5:60,dwell=300",
        "--duration",
        "1200",
        "--slo-p99",
        "2s",
        "--max-batch",
        "4",
        "-q",
    ]

    def test_cli_runs_end_to_end_and_is_byte_identical(self, tmp_path):
        out_a = tmp_path / "a"
        out_b = tmp_path / "b"
        for out in (out_a, out_b):
            code = serve_main(
                ["live", str(out)]
                + self.ARGS
                + [
                    "--metrics",
                    str(out / "m.json"),
                    "--trace",
                    str(out / "t.json"),
                ]
            )
            assert code == 0
        name = "live_carmel_sim.json"
        assert (out_a / name).read_bytes() == (out_b / name).read_bytes()
        assert (out_a / "t.json").read_bytes() == (
            out_b / "t.json"
        ).read_bytes()
        assert (out_a / "m.prom").read_bytes() == (
            out_b / "m.prom"
        ).read_bytes()
        report = json.loads((out_a / name).read_text())
        assert report["plane"]["controller"] == "sim"
        assert report["plane"]["timeline"] == "virtual"
        assert report["totals"]["arrived"] > 0

    def test_infeasible_slo_sheds_through_the_cli(self, tmp_path):
        out = tmp_path / "shed"
        code = serve_main(
            [
                "live",
                str(out),
                "--controller",
                "sim",
                "--arrivals",
                "synthetic",
                "--rate",
                "40",
                "--duration",
                "800",
                "--slo-p99",
                "30ms",  # < one batch-1 forward pass: infeasible
                "--metrics",
                str(out / "m.json"),
                "-q",
            ]
        )
        assert code == 0
        report = json.loads((out / "live_carmel_sim.json").read_text())
        assert report["totals"]["shed"] > 0
        assert not report["slo_met"]
        prom = (out / "m.prom").read_text()
        assert "serve_live_shed" in prom

    @pytest.mark.parametrize(
        "extra",
        [
            ["--admission", "speed=1"],
            ["--pools", "resnet50=9x9"],
            ["--pools", "alexnet=1x2"],
            ["--mix", "vgg16=1.0"],
            ["--arrivals", "mmpp:rates=5,dwell=1"],
        ],
    )
    def test_cli_errors_exit_2(self, tmp_path, extra):
        code = serve_main(["live", str(tmp_path)] + extra + ["-q"])
        assert code == 2

    def test_planner_cli_accepts_generator_specs(self, tmp_path):
        code = serve_main(
            [
                str(tmp_path),
                "--arrivals",
                "diurnal:base=5,peak=25,period=800",
                "--duration",
                "800",
                "--replicas",
                "2",
                "--threads",
                "4",
                "--max-batch",
                "4",
                "-q",
            ]
        )
        assert code == 0
        report = json.loads(
            (tmp_path / "serve_carmel_resnet50.json").read_text()
        )
        assert report["trace"]["kind"] == "diurnal"


class TestRunTraceGuards:
    def test_empty_trace_is_actionable(self):
        plane = _mock_plane([PoolSpec("resnet50", 1, 2)])
        with pytest.raises(ValueError, match="trace is empty"):
            run_trace(plane, [])


def test_shedded_request_records_are_frozen():
    shed = SheddedRequest(
        request_id=1, model="resnet50", arrival_ms=2.0, reason="deadline"
    )
    with pytest.raises(AttributeError):
        shed.reason = "other"


def test_wall_timeline_sleeps_approximately():
    timeline = WallTimeline()

    async def main():
        start = timeline.now_ms()
        await timeline.sleep_until(start + 20.0)
        return timeline.now_ms() - start

    elapsed = timeline.execute(main())
    assert elapsed >= 19.0
