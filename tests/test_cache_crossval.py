"""Cross-validation: analytical memory claims vs the trace-driven simulator.

The full-GEMM timing model is analytical; these tests replay the actual
address streams of the BLIS loop structure through the set-associative
cache simulator on miniature problems and confirm the residency claims the
analytical model is built on:

* a packed B micro-panel streamed per micro-kernel call stays L1-resident
  across the kc loop;
* the packed Ac block survives in an L2-sized cache across jr sweeps;
* the C tile misses on first touch per pc pass (the traffic the prefetch
  mechanism hides);
* packing converts a strided column walk into unit-stride streams.
"""

from __future__ import annotations


import pytest

from repro.sim.cache import Cache

F32 = 4
LINE = 64


def touch_range(cache: Cache, base: int, nbytes: int) -> None:
    cache.access_range(base, nbytes)


class TestPanelResidency:
    def test_b_panel_l1_resident_across_k(self):
        """Br (kc x nr) = 512*12*4 = 24 KiB fits a 64 KiB L1: after the
        first pass every revisit hits."""
        l1 = Cache(64 * 1024, LINE, 4)
        kc, nr = 512, 12
        panel_base = 1 << 20
        # first micro-kernel call: one pass over the panel
        for k in range(kc):
            touch_range(l1, panel_base + k * nr * F32, nr * F32)
        l1.reset_stats()
        # subsequent calls in the jr loop reuse the same panel
        for k in range(kc):
            touch_range(l1, panel_base + k * nr * F32, nr * F32)
        assert l1.stats.hit_rate > 0.99

    def test_ac_block_l2_resident(self):
        """Ac (mc x kc) sized to the analytical model's mc stays resident
        in an L2-scale cache across repeated panel sweeps."""
        l2 = Cache(2 * 1024 * 1024, LINE, 16)
        mc, kc, mr = 896, 512, 8
        base = 1 << 22
        panel_bytes = kc * mr * F32
        n_panels = mc // mr
        for sweep in range(2):
            for panel in range(n_panels):
                touch_range(l2, base + panel * panel_bytes, panel_bytes)
        # second sweep should be nearly all hits
        total = 2 * n_panels * (panel_bytes // LINE)
        assert l2.stats.hits > 0.45 * total

    def test_c_tile_misses_once_per_pass(self):
        """C tiles are cold per pc pass: every tile's lines miss first touch."""
        l1 = Cache(64 * 1024, LINE, 4)
        m, n, mr, nr = 64, 48, 8, 12
        ldc = n * F32
        c_base = 1 << 24
        misses = 0
        for i0 in range(0, m, mr):
            for j0 in range(0, n, nr):
                for i in range(mr):
                    misses += l1.access_range(
                        c_base + (i0 + i) * ldc + j0 * F32, nr * F32
                    )
        # analytical expectation: every C line fetched exactly once
        expected = m * n * F32 // LINE
        assert misses == pytest.approx(expected, rel=0.25)

    def test_packing_removes_strided_misses(self):
        """The unpacked A column walk misses per element at large ldb;
        after packing, the same data streams at ~1 miss per line."""
        ld = 4096 * F32
        unpacked = Cache(32 * 1024, LINE, 4)
        for k in range(256):
            unpacked.access(k * ld)  # walking one column of A
        packed = Cache(32 * 1024, LINE, 4)
        for k in range(256):
            packed.access(k * F32)  # the packed panel: unit stride
        assert unpacked.stats.hit_rate < 0.05
        assert packed.stats.hit_rate > 0.9


class TestAgainstAnalyticalTraffic:
    def test_pack_traffic_matches_formula(self):
        """Trace the packing reads of a small GEMM and compare with the
        analytical model's A-repacking rule (m*k per jc iteration)."""
        from repro.sim.memory import GemmShape, TileParams, memory_cost

        m, n, k = 32, 48, 16
        tiles = TileParams(mc=16, kc=8, nc=24, mr=8, nr=12)
        cost = memory_cost(GemmShape(m, n, k), tiles)
        jc_iters = -(-n // tiles.nc)
        expected_a_bytes = 2 * m * k * F32 * jc_iters
        copy_rate = 2.0 * 2 * F32
        assert cost.pack_a_cycles == pytest.approx(
            expected_a_bytes / copy_rate
        )

    def test_dram_bytes_counts_all_streams(self):
        from repro.sim.memory import GemmShape, TileParams, memory_cost

        m = n = k = 64
        tiles = TileParams(mc=64, kc=64, nc=64, mr=8, nr=12)
        cost = memory_cost(GemmShape(m, n, k), tiles)
        # one jc iteration, one pc pass: A + B read once, C in+out once
        expected = (m * k + k * n + 2 * m * n) * F32
        assert cost.dram_bytes == pytest.approx(expected)
