"""Tests for the workload tables (Tables I and II) and the IM2ROW transform.

Every row of both tables is cross-validated against the IM2ROW formula at
module import (the tables are built through ``_layer``, which asserts the
derivation); these tests additionally pin the exact published values.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.conv import (
    ConvSpec,
    conv_reference,
    im2row_gemm_dims,
    im2row_matrix,
)
from repro.workloads.resnet50 import RESNET50_LAYERS, resnet50_instances
from repro.workloads.square import SQUARE_SIZES, square_shapes
from repro.workloads.vgg16 import VGG16_LAYERS, vgg16_instances

# Table I exactly as published (layer id -> m, n, k)
TABLE_I = {
    1: (12544, 64, 147),
    2: (3136, 64, 64),
    3: (3136, 64, 576),
    4: (3136, 256, 64),
    5: (3136, 64, 256),
    6: (3136, 128, 256),
    7: (784, 128, 1152),
    8: (784, 512, 128),
    9: (784, 512, 256),
    10: (784, 128, 512),
    11: (784, 256, 512),
    12: (196, 256, 2304),
    13: (196, 1024, 256),
    14: (196, 1024, 512),
    15: (196, 256, 1024),
    16: (196, 512, 1024),
    17: (49, 512, 4608),
    18: (49, 2048, 512),
    19: (49, 2048, 1024),
    20: (49, 512, 2048),
}

# Table II exactly as published
TABLE_II = {
    1: (50176, 64, 27),
    2: (50176, 64, 576),
    3: (12544, 128, 576),
    4: (12544, 128, 1152),
    5: (3136, 256, 1152),
    6: (3136, 256, 2304),
    7: (784, 256, 2304),
    8: (784, 512, 4608),
    9: (196, 512, 4608),
}


class TestTableI:
    def test_twenty_unique_layers(self):
        assert len(RESNET50_LAYERS) == 20

    @pytest.mark.parametrize("layer_id", sorted(TABLE_I))
    def test_row_matches_paper(self, layer_id):
        layer = RESNET50_LAYERS[layer_id - 1]
        assert layer.layer_id == layer_id
        assert (layer.m, layer.n, layer.k) == TABLE_I[layer_id]

    def test_53_total_instances(self):
        assert len(resnet50_instances()) == 53

    def test_instances_sorted_and_unique(self):
        numbers = [n for n, _ in resnet50_instances()]
        assert numbers == sorted(numbers)
        assert len(set(numbers)) == len(numbers)

    def test_layer12_has_six_instances(self):
        layer = RESNET50_LAYERS[11]
        assert layer.instances == 6

    def test_conv_specs_rederive_table(self):
        for layer in RESNET50_LAYERS:
            assert im2row_gemm_dims(layer.conv) == (layer.m, layer.n, layer.k)


class TestTableII:
    def test_nine_unique_layers(self):
        assert len(VGG16_LAYERS) == 9

    @pytest.mark.parametrize("layer_id", sorted(TABLE_II))
    def test_row_matches_paper(self, layer_id):
        layer = VGG16_LAYERS[layer_id - 1]
        assert (layer.m, layer.n, layer.k) == TABLE_II[layer_id]

    def test_13_total_instances(self):
        assert len(vgg16_instances()) == 13


class TestIm2Row:
    def test_dims_formula(self):
        spec = ConvSpec(8, 8, 3, 16, 3, 3, 1, 1)
        assert im2row_gemm_dims(spec) == (64, 16, 27)

    def test_strided_dims(self):
        spec = ConvSpec(224, 224, 3, 64, 7, 7, 2, 3)
        assert im2row_gemm_dims(spec) == (12544, 64, 147)

    def test_batch_scales_m(self):
        spec = ConvSpec(8, 8, 3, 16, 1, 1)
        assert im2row_gemm_dims(spec, batch=4)[0] == 4 * 64

    def test_conv_by_gemm_equals_direct_conv(self):
        """The functional heart of the DL story: IM2ROW + GEMM == conv."""
        rng = np.random.default_rng(0)
        spec = ConvSpec(6, 5, 3, 4, 3, 3, 2, 1)
        x = rng.random((6, 5, 3), dtype=np.float32)
        filters = rng.random((3, 3, 3, 4), dtype=np.float32)
        rows = im2row_matrix(x, spec)
        m, n, k = im2row_gemm_dims(spec)
        assert rows.shape == (m, k)
        gemm_out = rows @ filters.reshape(k, n)
        direct = conv_reference(x, filters, spec)
        np.testing.assert_allclose(
            gemm_out.reshape(direct.shape), direct, rtol=1e-4
        )

    def test_wrong_input_shape_rejected(self):
        spec = ConvSpec(6, 5, 3, 4, 3, 3)
        with pytest.raises(ValueError):
            im2row_matrix(np.zeros((5, 5, 3), dtype=np.float32), spec)

    def test_degenerate_output_rejected(self):
        with pytest.raises(ValueError, match="degenerate"):
            ConvSpec(2, 2, 3, 4, 5, 5).out_shape()


class TestSquares:
    def test_sizes(self):
        assert SQUARE_SIZES == (1000, 2000, 3000, 4000, 5000)

    def test_shapes(self):
        assert square_shapes()[0] == (1000, 1000, 1000)
