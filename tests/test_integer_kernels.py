"""Tests for integer micro-kernels (the paper's motivation, item 5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.isa.neon_int import (
    NEON_I32_LIB,
    neon_vdup_4xi32,
    neon_vld_4xi32,
    neon_vmla_lane_4xi32,
)
from repro.ukernel.generator import generate_microkernel


def run_int_kernel(kernel, kc=7, seed=0):
    rng = np.random.default_rng(seed)
    ac = rng.integers(-50, 50, (kc, kernel.mr)).astype(np.int32)
    bc = rng.integers(-50, 50, (kc, kernel.nr)).astype(np.int32)
    c = rng.integers(-100, 100, (kernel.nr, kernel.mr)).astype(np.int32)
    expected = c + (ac.T.astype(np.int64) @ bc.astype(np.int64)).T.astype(
        np.int32
    )
    kernel.proc.interpret(kc, ac, bc, c)
    np.testing.assert_array_equal(c, expected)  # integer math is exact


class TestIntegerInstructions:
    def test_load_store_roundtrip(self):
        dst = np.zeros(4, dtype=np.int32)
        src = np.array([1, -2, 3, -4], dtype=np.int32)
        neon_vld_4xi32.interpret(dst, src)
        np.testing.assert_array_equal(dst, src)

    def test_lane_mla(self):
        acc = np.ones(4, dtype=np.int32)
        lhs = np.array([1, 2, 3, 4], dtype=np.int32)
        rhs = np.array([10, 20, 30, 40], dtype=np.int32)
        neon_vmla_lane_4xi32.interpret(acc, lhs, rhs, 3)
        np.testing.assert_array_equal(acc, 1 + lhs * 40)

    def test_broadcast(self):
        dst = np.zeros(4, dtype=np.int32)
        neon_vdup_4xi32.interpret(dst, np.array([9], dtype=np.int32))
        np.testing.assert_array_equal(dst, 9)


class TestIntegerGeneration:
    @pytest.mark.parametrize("mr,nr", [(8, 12), (4, 4), (4, 8)])
    def test_packed_i32_kernels_exact(self, mr, nr):
        kernel = generate_microkernel(mr, nr, NEON_I32_LIB)
        assert kernel.dtype == "i32"
        assert "vmlaq_laneq_s32" in kernel.proc.c_code()
        run_int_kernel(kernel)

    def test_row_i32_kernel(self):
        kernel = generate_microkernel(1, 8, NEON_I32_LIB)
        assert kernel.variant == "row"
        run_int_kernel(kernel)

    def test_i32_kernel_trace_shape(self):
        from repro.sim.pipeline import trace_from_kernel

        kernel = generate_microkernel(8, 12, NEON_I32_LIB)
        trace = trace_from_kernel(kernel)
        counts = trace.counts()
        assert counts["fma"] == 24 and counts["load"] == 5

    def test_int_registers_in_c(self):
        kernel = generate_microkernel(4, 4, NEON_I32_LIB)
        code = kernel.proc.c_code()
        assert "int32x4_t" in code
