"""The CI perf-regression gate (benchmarks/check_regression.py).

The checker compares the bench JSON a run writes to ``out/bench/``
against the committed floors in ``benchmarks/baselines/`` — these
tests drive it as a library and through ``main()`` the way the CI job
invokes it, including the deliberately-broken-baseline case that must
fail.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_regression",
    Path(__file__).resolve().parent.parent
    / "benchmarks"
    / "check_regression.py",
)
check_regression = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_regression)


def record(metric, value, name="test_bench", machine="carmel",
           isa="neon", threads=1):
    return {
        "name": name,
        "machine": machine,
        "isa": isa,
        "threads": threads,
        "metric": metric,
        "value": value,
    }


def write_bench(directory, records, stem="demo"):
    directory.mkdir(parents=True, exist_ok=True)
    (directory / f"BENCH_{stem}.json").write_text(json.dumps(records))


class TestDirection:
    def test_rates_are_higher_is_better(self):
        assert not check_regression.lower_is_better("candidates_per_sec")
        assert not check_regression.lower_is_better("square2000_gflops")
        assert not check_regression.lower_is_better("vectorized_speedup_x")

    @pytest.mark.parametrize(
        "metric", ["p99_ms", "latency_us", "build_seconds"]
    )
    def test_latencies_are_lower_is_better(self, metric):
        assert check_regression.lower_is_better(metric)


class TestCompare:
    def key(self, metric):
        return ("test_bench", "carmel", "neon", 1, metric)

    def test_within_tolerance_passes(self):
        base = {self.key("rate"): 100.0}
        assert check_regression.compare(
            {self.key("rate"): 85.0}, base, 0.2
        ) == []

    def test_higher_is_better_regression_fails(self):
        base = {self.key("rate"): 100.0}
        problems = check_regression.compare(
            {self.key("rate"): 79.0}, base, 0.2
        )
        assert len(problems) == 1 and "REGRESSION" in problems[0]

    def test_lower_is_better_regression_fails(self):
        base = {self.key("p99_ms"): 10.0}
        assert check_regression.compare(
            {self.key("p99_ms"): 9.0}, base, 0.2
        ) == []
        problems = check_regression.compare(
            {self.key("p99_ms"): 12.5}, base, 0.2
        )
        assert len(problems) == 1 and "REGRESSION" in problems[0]

    def test_improvement_never_fails(self):
        base = {self.key("rate"): 100.0, self.key("p99_ms"): 10.0}
        current = {self.key("rate"): 500.0, self.key("p99_ms"): 1.0}
        assert check_regression.compare(current, base, 0.2) == []

    def test_baselined_metric_missing_from_current_fails(self):
        base = {self.key("rate"): 100.0}
        problems = check_regression.compare({}, base, 0.2)
        assert len(problems) == 1 and "MISSING" in problems[0]

    def test_current_only_metrics_are_fine(self):
        base = {self.key("rate"): 100.0}
        current = {self.key("rate"): 100.0, self.key("new_metric"): 1.0}
        assert check_regression.compare(current, base, 0.2) == []

    def test_records_match_on_full_key(self):
        base = {("test_bench", "carmel", "neon", 1, "rate"): 100.0}
        current = {("test_bench", "carmel", "neon", 8, "rate"): 100.0}
        problems = check_regression.compare(current, base, 0.2)
        assert len(problems) == 1 and "MISSING" in problems[0]


class TestMain:
    def run(self, tmp_path, current, baselines, tolerance=0.2):
        cur, base = tmp_path / "current", tmp_path / "baselines"
        write_bench(cur, current)
        write_bench(base, baselines)
        return check_regression.main(
            [
                "--current", str(cur),
                "--baselines", str(base),
                "--tolerance", str(tolerance),
            ]
        )

    def test_passing_run_exits_zero(self, tmp_path, capsys):
        rc = self.run(
            tmp_path, [record("rate", 95.0)], [record("rate", 100.0)]
        )
        assert rc == 0
        assert "within 20%" in capsys.readouterr().out

    def test_deliberately_broken_baseline_fails(self, tmp_path, capsys):
        # the ISSUE-7 acceptance check: an impossible floor must trip
        rc = self.run(
            tmp_path, [record("rate", 95.0)], [record("rate", 1e9)]
        )
        assert rc == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_missing_benchmark_fails(self, tmp_path):
        rc = self.run(
            tmp_path, [record("other", 1.0)], [record("rate", 100.0)]
        )
        assert rc == 1

    def test_no_baselines_is_an_error(self, tmp_path):
        cur = tmp_path / "current"
        write_bench(cur, [record("rate", 1.0)])
        rc = check_regression.main(
            [
                "--current", str(cur),
                "--baselines", str(tmp_path / "nothing"),
            ]
        )
        assert rc == 1

    def test_missing_current_directory_is_an_error(self, tmp_path):
        base = tmp_path / "baselines"
        write_bench(base, [record("rate", 1.0)])
        rc = check_regression.main(
            [
                "--current", str(tmp_path / "nothing"),
                "--baselines", str(base),
            ]
        )
        assert rc == 1


class TestCommittedBaselines:
    """The repo's committed floors stay loadable and conservative."""

    BASELINES = Path(__file__).resolve().parent.parent / (
        "benchmarks/baselines"
    )

    def test_baselines_load(self):
        records = check_regression.load_records(self.BASELINES)
        assert records, "no committed baselines found"
        for (_, _, _, _, metric), value in records.items():
            assert value > 0, f"degenerate baseline for {metric}"

    def test_speedup_floor_gates_the_100x_target(self):
        records = check_regression.load_records(self.BASELINES)
        speedups = {
            key: value
            for key, value in records.items()
            if key[4] == "vectorized_speedup_x"
        }
        assert speedups, "speedup baseline missing"
        for value in speedups.values():
            # floor * (1 - tolerance) must still enforce >= 100x
            assert value * 0.8 >= 100.0
