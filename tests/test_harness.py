"""Tests for the evaluation harness: the *shape* of the paper's results.

We do not assert absolute GFLOPS (the substrate is a model, not the
authors' Jetson board); we assert the orderings and ratios the paper's
conclusions rest on, figure by figure.
"""

from __future__ import annotations

import pytest

from repro.eval.harness import (
    all_config_breakdowns,
    best_exo_breakdown,
    default_context,
    fig13_solo_data,
    fig14_square_data,
    fig15_resnet_layer_data,
    fig16_resnet_time_data,
    fig17_vgg_layer_data,
    fig18_vgg_time_data,
)
from repro.eval.report import render_series, render_table, winners
from repro.isa.machine import CARMEL

CONFIGS = ["ALG+NEON", "ALG+BLIS", "BLIS", "ALG+EXO"]


@pytest.fixture(scope="module")
def ctx():
    return default_context()


@pytest.fixture(scope="module")
def fig13(ctx):
    return fig13_solo_data(ctx=ctx)


@pytest.fixture(scope="module")
def fig14(ctx):
    return fig14_square_data(sizes=(1000, 2000, 3000), ctx=ctx)


class TestFig13Shape:
    """EXO matches hand-written kernels at 8x12 and wins every edge case."""

    def test_all_shapes_present(self, fig13):
        assert [r["shape"] for r in fig13] == [
            "8x12", "4x4", "4x8", "4x12", "8x4", "8x8",
        ]

    def test_exo_at_least_blis_on_8x12(self, fig13):
        row = fig13[0]
        assert row["EXO"] >= row["BLIS"]
        assert row["EXO"] / row["BLIS"] < 1.05  # "minor differences"

    def test_blis_beats_neon_everywhere(self, fig13):
        for row in fig13:
            assert row["BLIS"] > row["NEON"]

    def test_exo_wins_every_edge_case_clearly(self, fig13):
        for row in fig13[1:]:
            assert row["EXO"] > 1.3 * row["BLIS"], row

    def test_edge_penalty_proportional_to_tile(self, fig13):
        # NEON/BLIS edge GFLOPS scale with the useful fraction of 8x12
        ratio_4x4 = fig13[1]["BLIS"] / fig13[0]["BLIS"]
        assert ratio_4x4 == pytest.approx(16 / 96, rel=0.05)

    def test_all_below_machine_peak(self, fig13):
        for row in fig13:
            for config in ("NEON", "BLIS", "EXO"):
                assert row[config] < CARMEL.peak_gflops()


class TestFig14Shape:
    """Library BLIS (prefetch) wins squarish; ALG+EXO best among ALG+*."""

    def test_blis_library_wins(self, fig14):
        for row in fig14:
            assert row["BLIS"] >= row["ALG+BLIS"]
            assert row["BLIS"] >= row["ALG+NEON"]

    def test_exo_best_among_alg(self, fig14):
        for row in fig14:
            assert row["ALG+EXO"] >= row["ALG+BLIS"] >= row["ALG+NEON"]

    def test_gap_is_small_percent(self, fig14):
        # the four configurations are within ~15% of each other at scale
        for row in fig14:
            vals = [row[c] for c in CONFIGS]
            assert max(vals) / min(vals) < 1.15

    def test_reports_selected_kernel(self, fig14):
        for row in fig14:
            assert "x" in row["exo_kernel"]


class TestDnnShapes:
    def test_fig15_exo_wins_plurality(self, ctx):
        rows = fig15_resnet_layer_data(ctx=ctx)
        assert len(rows) == 20
        wins = winners(rows, CONFIGS)
        exo_wins = wins.count("ALG+EXO")
        assert exo_wins >= 8  # paper: best on 9 of 20 layers

    def test_fig15_exo_dominates_tail_layers(self, ctx):
        """Layers 17-20 (m=49) are edge-case heavy: EXO must win them."""
        rows = fig15_resnet_layer_data(ctx=ctx)
        for row in rows[16:]:
            others = max(row["ALG+NEON"], row["ALG+BLIS"], row["BLIS"])
            assert row["ALG+EXO"] > others

    def test_fig16_cumulative_order(self, ctx):
        rows = fig16_resnet_time_data(ctx=ctx)
        assert len(rows) == 53
        final = rows[-1]
        # paper: ALG+EXO best, then BLIS, then ALG+BLIS, then ALG+NEON
        assert final["ALG+EXO"] < final["BLIS"]
        assert final["BLIS"] < final["ALG+BLIS"]
        assert final["ALG+BLIS"] < final["ALG+NEON"]

    def test_fig16_times_monotone(self, ctx):
        rows = fig16_resnet_time_data(ctx=ctx)
        for config in CONFIGS:
            series = [r[config] for r in rows]
            assert series == sorted(series)

    def test_fig17_vgg_layers(self, ctx):
        rows = fig17_vgg_layer_data(ctx=ctx)
        assert len(rows) == 9
        wins = winners(rows, CONFIGS)
        assert "ALG+EXO" in wins  # EXO best on some layers
        assert wins.count("ALG+NEON") == 0

    def test_fig18_exo_and_blis_close(self, ctx):
        rows = fig18_vgg_time_data(ctx=ctx)
        assert len(rows) == 13
        final = rows[-1]
        ratio = final["ALG+EXO"] / final["BLIS"]
        assert 0.85 < ratio < 1.1  # "the performance ... are close"


class TestSelection:
    def test_best_exo_picks_a_candidate(self, ctx):
        shape, breakdown = best_exo_breakdown(1000, 1000, 1000, ctx=ctx)
        assert shape in ((8, 12), (8, 8), (8, 4))
        assert breakdown.gflops > 0

    def test_all_config_keys(self, ctx):
        configs = all_config_breakdowns(196, 256, 1024, ctx=ctx)
        assert set(configs) == set(CONFIGS)


class TestReport:
    def test_render_table(self, fig13):
        text = render_table(fig13, title="Fig 13")
        assert "Fig 13" in text and "8x12" in text

    def test_render_series(self, fig14):
        text = render_series(fig14, x="size", series=CONFIGS)
        assert "ALG+EXO" in text

    def test_render_empty(self):
        assert "(no data)" in render_table([])
