"""Shared fixtures: canonical procedures used across the test suite."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro.core import proc
from repro.ukernel.registry import default_registry


@pytest.fixture(scope="session")
def registry():
    """Process-wide kernel registry (generation is the slow part)."""
    return default_registry()


@pytest.fixture(scope="session")
def uk8x12(registry):
    return registry.get(8, 12)


@pytest.fixture(scope="session")
def matmul_ref():
    from repro.ukernel.generator import make_reference_kernel

    return make_reference_kernel()


@pytest.fixture()
def copy_proc():
    @proc
    def copy2d(N: size, M: size, dst: f32[N, M] @ DRAM, src: f32[N, M] @ DRAM):
        for i in seq(0, N):
            for j in seq(0, M):
                dst[i, j] = src[i, j]

    return copy2d
