"""Tests for loop scheduling: divide, reorder, unroll, fission.

Every transform is checked two ways: structural assertions on the result,
and semantic equivalence against the original on random inputs.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent.parent))

from helpers import assert_equivalent

from repro.core import DRAM, SchedulingError, proc
from repro.core.loopir import For
from repro.core.scheduling import (
    autofission,
    divide_loop,
    fission,
    reorder_loops,
    unroll_loop,
)


@proc
def saxpy(N: size, a: f32[1] @ DRAM, x: f32[N] @ DRAM, y: f32[N] @ DRAM):
    for i in seq(0, N):
        y[i] += a[0] * x[i]


@proc
def mm(M: size, N: size, K: size, A: f32[K, M] @ DRAM, B: f32[K, N] @ DRAM, C: f32[N, M] @ DRAM):
    for k in seq(0, K):
        for j in seq(0, N):
            for i in seq(0, M):
                C[j, i] += A[k, i] * B[k, j]


class TestDivideLoop:
    def test_perfect_division_structure(self):
        p = mm.partial_eval(8, 12, 16)
        p = divide_loop(p, "i", 4, ["it", "itt"], perfect=True)
        outer = p.find("for it in _: _").stmt()
        assert isinstance(outer.body[0], For)
        assert outer.body[0].iter.name == "itt"

    def test_perfect_division_semantics(self):
        p = mm.partial_eval(8, 12, 16)
        p2 = divide_loop(p, "i", 4, ["it", "itt"], perfect=True)
        assert_equivalent(p, p2, sizes={})

    def test_perfect_rejects_indivisible(self):
        p = mm.partial_eval(6, 12, 16)
        with pytest.raises(SchedulingError, match="divisible"):
            divide_loop(p, "i", 4, ["it", "itt"], perfect=True)

    def test_symbolic_perfect_needs_assertion(self):
        with pytest.raises(SchedulingError, match="assert"):
            divide_loop(saxpy, "i", 4, ["it", "itt"], perfect=True)

    def test_symbolic_perfect_with_assertion(self):
        @proc
        def saxpy4(N: size, x: f32[N] @ DRAM, y: f32[N] @ DRAM):
            assert N % 4 == 0
            for i in seq(0, N):
                y[i] += x[i]

        p = divide_loop(saxpy4, "i", 4, ["it", "itt"], perfect=True)
        assert_equivalent(saxpy4, p, sizes={"N": 8})

    def test_tail_division_semantics(self):
        p = mm.partial_eval(7, 5, 3)
        p2 = divide_loop(p, "i", 4, ["it", "itt"])
        assert_equivalent(p, p2, sizes={})

    def test_tail_division_structure(self):
        p = mm.partial_eval(7, 5, 3)
        p2 = divide_loop(p, "i", 4, ["it", "itt"])
        # main block (1 full chunk) and a 3-iteration tail
        text = str(p2)
        assert "seq(0, 3)" in text

    def test_divide_whole_loop_smaller_than_quotient(self):
        p = mm.partial_eval(3, 4, 2)
        p2 = divide_loop(p, "i", 4, ["it", "itt"])
        assert_equivalent(p, p2, sizes={})

    def test_nonzero_base_rejected(self):
        @proc
        def shifted(x: f32[8] @ DRAM):
            for i in seq(2, 8):
                x[i] = 0.0

        with pytest.raises(SchedulingError, match="starting at 0"):
            divide_loop(shifted, "i", 2, ["a", "b"], perfect=True)

    def test_bad_quotient_rejected(self):
        with pytest.raises(SchedulingError, match="positive"):
            divide_loop(saxpy, "i", 0, ["a", "b"])


class TestReorderLoops:
    def test_swap_structure(self):
        p = mm.partial_eval(4, 4, 4)
        p2 = reorder_loops(p, "j i")
        outer = p2.find("for i in _: _").stmt()
        assert outer.body[0].iter.name == "j"

    def test_swap_semantics(self):
        p = mm.partial_eval(4, 6, 5)
        p2 = reorder_loops(p, "j i")
        assert_equivalent(p, p2, sizes={})

    def test_imperfect_nest_rejected(self):
        @proc
        def two_stmt(x: f32[4, 4] @ DRAM):
            for i in seq(0, 4):
                x[i, 0] = 1.0
                for j in seq(0, 4):
                    x[i, j] = 0.0

        with pytest.raises(SchedulingError):
            reorder_loops(two_stmt, "i j")

    def test_order_dependent_writes_rejected(self):
        @proc
        def overwrite(x: f32[4] @ DRAM):
            for i in seq(0, 4):
                for j in seq(0, 4):
                    x[j] = x[j] + 1.0 * i

        # x[j] written with different signatures across i (write depends
        # on iteration order through the read-modify-write)
        p2 = reorder_loops(overwrite, "i j")
        # reductions commute: this one is actually safe because the write
        # is a pure function of (i, j) accumulated... it is NOT: the model
        # rejects non-reduction writes with i-dependent values
        assert_equivalent(overwrite, p2, sizes={})


class TestUnrollLoop:
    def test_unroll_replicates_body(self):
        p = mm.partial_eval(4, 4, 4)
        p2 = unroll_loop(p, "i")
        text = str(p2)
        assert "for i in" not in text

    def test_unroll_semantics(self):
        p = mm.partial_eval(4, 4, 4)
        p2 = unroll_loop(p, "j")
        assert_equivalent(p, p2, sizes={})

    def test_unroll_symbolic_rejected(self):
        with pytest.raises(SchedulingError, match="symbolic"):
            unroll_loop(saxpy, "i")

    def test_unroll_nth(self):
        p = mm.partial_eval(4, 4, 2)
        p = divide_loop(p, "i", 2, ["it", "itt"], perfect=True)
        p2 = unroll_loop(p, "itt")
        assert_equivalent(p, p2, sizes={})


class TestFission:
    @staticmethod
    def _two_phase():
        @proc
        def two_phase(N: size, x: f32[N, 4] @ DRAM, y: f32[N, 4] @ DRAM):
            for i in seq(0, N):
                for j in seq(0, 4):
                    x[i, j] = 1.0
                    y[i, j] = 2.0

        return two_phase

    def test_plain_fission_duplicates_loops(self):
        p = self._two_phase()
        p2 = fission(p, p.find("x[_] = _").after(), n_lifts=2)
        loops = [s for s in p2.ir.body if isinstance(s, For)]
        assert len(loops) == 2
        assert_equivalent(p, p2, sizes={"N": 5})

    def test_autofission_semantics(self):
        p = self._two_phase()
        p2 = autofission(p, p.find("x[_] = _").after(), n_lifts=2)
        assert_equivalent(p, p2, sizes={"N": 5})

    def test_autofission_hoists_loop_independent_epilogue(self):
        @proc
        def store_last(N: size, acc: f32[4] @ DRAM, out: f32[4] @ DRAM, x: f32[N, 4] @ DRAM):
            for k in seq(0, N):
                for j in seq(0, 4):
                    acc[j] += x[k, j]
                for j in seq(0, 4):
                    out[j] = acc[j]

        p2 = autofission(
            store_last, store_last.find("acc[_] += _").after(), n_lifts=1
        )
        # fission at the j-level inside k: epilogue is j-dependent so both
        # stay loops, but at the k level the out-store may be hoisted
        p3 = autofission(p2, p2.find("out[_] = _").before(), n_lifts=1)
        assert_equivalent(store_last, p3, sizes={"N": 6})

    def test_fission_too_many_lifts_rejected(self):
        p = self._two_phase()
        with pytest.raises(SchedulingError, match="enclosing"):
            fission(p, p.find("x[_] = _").after(), n_lifts=3)

    def test_fission_refuses_separating_alloc_from_use(self):
        @proc
        def uses_alloc(N: size, x: f32[N] @ DRAM):
            for i in seq(0, N):
                t: f32 @ DRAM
                t = x[i]
                x[i] = t * 2.0

        with pytest.raises(SchedulingError, match="lift_alloc"):
            autofission(
                uses_alloc, uses_alloc.find("t = _").after(), n_lifts=1
            )

    def test_unsafe_fission_rejected(self):
        @proc
        def carried(N: size, x: f32[N] @ DRAM, y: f32[N] @ DRAM):
            assert N % 2 == 0
            for i in seq(0, N):
                x[0] = x[0] + 1.0 * i
                y[i] = x[0]

        # splitting would read the final x[0] in every y[i]
        with pytest.raises(SchedulingError):
            fission(carried, carried.find("x[_] = _").after(), n_lifts=1)
