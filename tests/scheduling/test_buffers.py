"""Tests for buffer scheduling: staging, expansion, lifting, retyping."""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).parent.parent))

from helpers import assert_equivalent

from repro.core import DRAM, Neon, SchedulingError, proc
from repro.core.loopir import Alloc
from repro.core.scheduling import (
    bind_expr,
    expand_dim,
    lift_alloc,
    set_memory,
    set_precision,
    stage_mem,
)
from repro.core.typesys import TensorType


@proc
def axpy_tile(K: size, A: f32[K, 4] @ DRAM, B: f32[K, 4] @ DRAM, C: f32[4, 4] @ DRAM):
    for k in seq(0, K):
        for j in seq(0, 4):
            for i in seq(0, 4):
                C[j, i] += A[k, i] * B[k, j]


class TestStageMem:
    def test_inserts_load_compute_store(self):
        p = stage_mem(axpy_tile, "C[_] += _", "C[j, i]", "C_reg")
        text = str(p)
        assert "C_reg = C[j, i]" in text
        assert "C_reg += " in text
        assert "C[j, i] = C_reg" in text

    def test_semantics_preserved(self):
        p = stage_mem(axpy_tile, "C[_] += _", "C[j, i]", "C_reg")
        assert_equivalent(axpy_tile, p, sizes={"K": 5})

    def test_affine_equal_access_matches(self):
        @proc
        def shifted(C: f32[8] @ DRAM):
            for i in seq(0, 4):
                C[2 * i + 1] += 1.0

        p = stage_mem(shifted, "C[_] += _", "C[1 + 2 * i]", "r")
        assert_equivalent(shifted, p, sizes={})

    def test_wrong_element_rejected(self):
        with pytest.raises(SchedulingError, match="does not occur"):
            stage_mem(axpy_tile, "C[_] += _", "C[i, j]", "C_reg")

    def test_partial_index_rejected(self):
        with pytest.raises(SchedulingError, match="fully index"):
            stage_mem(axpy_tile, "C[_] += _", "C[j]", "C_reg")


class TestBindExpr:
    def test_binds_first_read(self):
        p = bind_expr(axpy_tile, "A[_]", "A_reg")
        text = str(p)
        assert "A_reg = A[k, i]" in text
        assert "A_reg * B[k, j]" in text or "A_reg *" in text

    def test_semantics_preserved(self):
        p = bind_expr(axpy_tile, "B[_]", "B_reg")
        assert_equivalent(axpy_tile, p, sizes={"K": 3})

    def test_missing_buffer_rejected(self):
        with pytest.raises(SchedulingError, match="no read"):
            bind_expr(axpy_tile, "Z[_]", "Z_reg")

    def test_bad_pattern_rejected(self):
        with pytest.raises(SchedulingError, match="Buf"):
            bind_expr(axpy_tile, "A[", "r")


class TestExpandDim:
    def _staged(self):
        return stage_mem(axpy_tile, "C[_] += _", "C[j, i]", "C_reg")

    def test_prepends_dimension(self):
        p = expand_dim(self._staged(), "C_reg", 4, "i")
        alloc = p.find("C_reg: _").stmt()
        assert isinstance(alloc.type, TensorType)
        assert str(alloc.type.shape[0]) != ""

    def test_stacked_expansion_semantics(self):
        p = self._staged()
        p = expand_dim(p, "C_reg", 4, "i")
        p = expand_dim(p, "C_reg", 4, "j")
        assert_equivalent(axpy_tile, p, sizes={"K": 4})

    def test_affine_index_expression(self):
        @proc
        def split(C: f32[8] @ DRAM):
            for it in seq(0, 2):
                for itt in seq(0, 4):
                    t: f32 @ DRAM
                    t = C[4 * it + itt]
                    C[4 * it + itt] = t * 2.0

        p = expand_dim(split, "t", 8, "4 * it + itt")
        assert_equivalent(split, p, sizes={})

    def test_out_of_range_index_rejected(self):
        with pytest.raises(SchedulingError, match="exceeds"):
            expand_dim(self._staged(), "C_reg", 2, "j")

    def test_unknown_symbol_rejected(self):
        with pytest.raises(SchedulingError, match="unknown name"):
            expand_dim(self._staged(), "C_reg", 4, "zz")


class TestLiftAlloc:
    def _expanded(self):
        p = stage_mem(axpy_tile, "C[_] += _", "C[j, i]", "C_reg")
        p = expand_dim(p, "C_reg", 4, "i")
        p = expand_dim(p, "C_reg", 4, "j")
        return p

    def test_lift_moves_to_top(self):
        p = lift_alloc(self._expanded(), "C_reg", n_lifts=3)
        assert isinstance(p.ir.body[0], Alloc)
        assert p.ir.body[0].name.name == "C_reg"

    def test_lift_semantics(self):
        p = lift_alloc(self._expanded(), "C_reg", n_lifts=3)
        assert_equivalent(axpy_tile, p, sizes={"K": 4})

    def test_overlift_stops_at_top(self):
        p = lift_alloc(self._expanded(), "C_reg", n_lifts=99)
        assert isinstance(p.ir.body[0], Alloc)

    def test_lift_shape_depending_on_loop_rejected(self):
        @proc
        def varsize(N: size, x: f32[N] @ DRAM):
            for i in seq(0, N):
                for j in seq(0, 4):
                    t: f32 @ DRAM
                    t = x[i]
                    x[i] = t

        p = expand_dim(varsize, "t", 4, "j")
        # now expand with the loop-dependent extent by hand is impossible via
        # API; instead lift the alloc past its indexing loop and confirm the
        # well-formed case still works
        p = lift_alloc(p, "t", n_lifts=2)
        assert_equivalent(varsize, p, sizes={"N": 3})


class TestSetMemoryAndPrecision:
    def test_set_memory(self):
        p = stage_mem(axpy_tile, "C[_] += _", "C[j, i]", "C_reg")
        p = set_memory(p, "C_reg", Neon)
        assert p.find("C_reg: _").stmt().mem is Neon

    def test_set_precision_alloc(self):
        p = stage_mem(axpy_tile, "C[_] += _", "C[j, i]", "C_reg")
        p = set_precision(p, "C_reg", "f16")
        text = str(p)
        assert "C_reg: f16" in text

    def test_set_precision_argument_retypes_reads(self):
        p = set_precision(axpy_tile, "A", "f16")
        arg = p.ir.arg_named("A")
        assert arg.type.base.name == "f16"
        a = np.random.default_rng(0).random((3, 4)).astype(np.float16)
        b = np.random.default_rng(1).random((3, 4)).astype(np.float32)
        c = np.zeros((4, 4), dtype=np.float32)
        p.interpret(3, a, b, c)  # mixed precision executes

    def test_unknown_precision_rejected(self):
        with pytest.raises(Exception, match="unknown scalar type"):
            set_precision(axpy_tile, "A", "f128")
