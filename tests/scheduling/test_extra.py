"""Tests for inline_call, fuse_loops, and cut_loop."""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).parent.parent))

from helpers import assert_equivalent

from repro.core import DRAM, Neon, SchedulingError, proc
from repro.core.loopir import For
from repro.core.scheduling import (
    cut_loop,
    fuse_loops,
    inline_call,
    replace,
    simplify,
)
from repro.isa.neon import neon_vfmla_4xf32_4xf32, neon_vld_4xf32


class TestInlineCall:
    def test_inline_restores_loop_semantics(self):
        @proc
        def loads(x: f32[8] @ DRAM):
            buf: f32[8] @ Neon
            for i in seq(0, 4):
                buf[i] = x[i]

        lowered = replace(loads, "for i in _: _", neon_vld_4xf32)
        restored = inline_call(lowered, "neon_vld_4xf32(_)")
        assert "neon_vld_4xf32" not in str(restored)
        assert_equivalent(loads, restored, sizes={})

    def test_replace_inline_roundtrip(self, uk8x12):
        """Inlining a lane FMA and replacing it again reproduces the call."""
        p = uk8x12.proc
        inlined = inline_call(p, "neon_vfmla_4xf32_4xf32(_)")
        assert str(inlined).count("neon_vfmla") == 0
        relowered = replace(inlined, "for i in _: _", neon_vfmla_4xf32_4xf32)
        assert str(relowered).count("neon_vfmla") == 1
        rng = np.random.default_rng(0)
        kc = 4
        ac = rng.random((kc, 8), dtype=np.float32)
        bc = rng.random((kc, 12), dtype=np.float32)
        c1 = rng.random((12, 8), dtype=np.float32)
        c2 = c1.copy()
        p.interpret(kc, ac, bc, c1)
        relowered.interpret(kc, ac, bc, c2)
        np.testing.assert_allclose(c1, c2, rtol=1e-6)

    def test_inline_full_kernel_still_correct(self, uk8x12):
        """Inline every instruction of the finished kernel; semantics hold."""
        p = uk8x12.proc
        for name in (
            "neon_vld_4xf32(_)",
            "neon_vfmla_4xf32_4xf32(_)",
            "neon_vst_4xf32(_)",
        ):
            while True:
                try:
                    p = inline_call(p, name)
                except Exception:
                    break
        assert "neon_" not in str(p)
        assert_equivalent(uk8x12.proc, p, sizes={"KC": 3}, atol=1e-4)

    def test_non_call_rejected(self, uk8x12):
        with pytest.raises(SchedulingError, match="call"):
            inline_call(uk8x12.proc, "for k in _: _")


class TestFuseLoops:
    def test_fuse_identical_ranges(self):
        @proc
        def two(x: f32[4] @ DRAM, y: f32[4] @ DRAM):
            for i in seq(0, 4):
                x[i] = 1.0
            for j in seq(0, 4):
                y[j] = 2.0

        fused = fuse_loops(two, "i")
        loops = [s for s in fused.ir.body if isinstance(s, For)]
        assert len(loops) == 1
        assert_equivalent(two, fused, sizes={})

    def test_fuse_producer_consumer(self):
        @proc
        def pc(N: size, a: f32[N] @ DRAM, b: f32[N] @ DRAM):
            for i in seq(0, N):
                a[i] = 2.0 * b[i]
            for j in seq(0, N):
                b[j] = a[j] + 1.0

        fused = fuse_loops(pc, "i")
        assert_equivalent(pc, fused, sizes={"N": 6})

    def test_fuse_different_bounds_rejected(self):
        @proc
        def uneven(x: f32[8] @ DRAM):
            for i in seq(0, 4):
                x[i] = 1.0
            for j in seq(0, 8):
                x[j] = 2.0

        with pytest.raises(SchedulingError, match="bounds"):
            fuse_loops(uneven, "i")

    def test_fuse_order_visible_rejected(self):
        @proc
        def bad(N: size, x: f32[4] @ DRAM, y: f32[N] @ DRAM):
            for i in seq(0, N):
                x[0] = 1.0 * i
            for j in seq(0, N):
                y[j] = x[0]

        with pytest.raises(SchedulingError, match="behaviour"):
            fuse_loops(bad, "i")

    def test_fuse_without_neighbour_rejected(self):
        @proc
        def single(x: f32[4] @ DRAM):
            for i in seq(0, 4):
                x[i] = 1.0

        with pytest.raises(SchedulingError, match="adjacent"):
            fuse_loops(single, "i")


class TestCutLoop:
    def test_cut_structure(self):
        @proc
        def fill(x: f32[10] @ DRAM):
            for i in seq(0, 10):
                x[i] = 1.0

        p = cut_loop(fill, "i", 6)
        loops = [s for s in p.ir.body if isinstance(s, For)]
        assert len(loops) == 2
        assert "seq(0, 6)" in str(p) and "seq(6, 10)" in str(p)
        assert_equivalent(fill, p, sizes={})

    def test_cut_then_simplify_semantics(self):
        @proc
        def scale(x: f32[7] @ DRAM):
            for i in seq(0, 7):
                x[i] = x[i] * 3.0

        p = simplify(cut_loop(scale, "i", 4))
        assert_equivalent(scale, p, sizes={})

    def test_cut_outside_range_rejected(self):
        @proc
        def fill(x: f32[4] @ DRAM):
            for i in seq(0, 4):
                x[i] = 1.0

        with pytest.raises(SchedulingError, match="outside"):
            cut_loop(fill, "i", 4)
        with pytest.raises(SchedulingError, match="outside"):
            cut_loop(fill, "i", 0)

    def test_cut_symbolic_rejected(self):
        @proc
        def fill(N: size, x: f32[N] @ DRAM):
            for i in seq(0, N):
                x[i] = 1.0

        with pytest.raises(SchedulingError, match="static"):
            cut_loop(fill, "i", 2)
