"""Tests for replace(): the unification-checked intrinsic substitution.

This is the paper's safety story (Section II-B): the "security definition"
must reject any substitution that would change behaviour, and accept the
legitimate ones with correctly derived windows and lane selectors.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent.parent))

from helpers import assert_equivalent

from repro.core import DRAM, Neon, SchedulingError, proc
from repro.core.loopir import Call, WindowExpr
from repro.core.scheduling import replace
from repro.isa.neon import (
    neon_vdup_4xf32,
    neon_vfmadd_4xf32_4xf32,
    neon_vfmla_4xf32_4xf32,
    neon_vld_4xf32,
    neon_vst_4xf32,
)


@proc
def plain_copy(dst: f32[4] @ Neon, src: f32[4] @ DRAM):
    for i in seq(0, 4):
        dst[i] = src[i]


class TestAccepts:
    def test_simple_load(self):
        p = replace(plain_copy, "for i in _: _", neon_vld_4xf32)
        call = p.ir.body[0]
        assert isinstance(call, Call)
        assert call.proc.name == "neon_vld_4xf32"
        assert_equivalent(plain_copy, p, sizes={})

    def test_windowed_load_with_offsets(self):
        @proc
        def tile_load(x: f32[2, 8] @ DRAM):
            buf: f32[2, 2, 4] @ Neon
            for r in seq(0, 2):
                for t in seq(0, 2):
                    for i in seq(0, 4):
                        buf[r, t, i] = x[r, 4 * t + i]

        p = replace(tile_load, "for i in _: _", neon_vld_4xf32)
        call = p.find("neon_vld_4xf32(_)").stmt()
        src = call.args[1]
        assert isinstance(src, WindowExpr)
        assert_equivalent(tile_load, p, sizes={})

    def test_lane_fma_derives_lane_selector(self):
        @proc
        def lane(C: f32[4, 4] @ Neon, A: f32[4] @ Neon, B: f32[4] @ Neon):
            for j in seq(0, 4):
                for i in seq(0, 4):
                    C[j, i] += A[i] * B[j]

        p = replace(lane, "for i in _: _", neon_vfmla_4xf32_4xf32)
        call = p.find("neon_vfmla_4xf32_4xf32(_)").stmt()
        # lane argument must be the j iterator
        from repro.core.loopir import Read

        assert isinstance(call.args[3], Read)
        assert call.args[3].name.name == "j"
        assert_equivalent(lane, p, sizes={})

    def test_broadcast_constant_index(self):
        @proc
        def bcast(dst: f32[4] @ Neon, src: f32[8] @ DRAM):
            for i in seq(0, 4):
                dst[i] = src[3]

        p = replace(bcast, "for i in _: _", neon_vdup_4xf32)
        assert_equivalent(bcast, p, sizes={})

    def test_plain_fma(self):
        @proc
        def vfma(acc: f32[4] @ Neon, a: f32[4] @ Neon, b: f32[4] @ Neon):
            for i in seq(0, 4):
                acc[i] += a[i] * b[i]

        p = replace(vfma, "for i in _: _", neon_vfmadd_4xf32_4xf32)
        assert_equivalent(vfma, p, sizes={})

    def test_tries_candidates_until_one_unifies(self):
        @proc
        def load_then_store(x: f32[4] @ DRAM, y: f32[4] @ DRAM):
            buf: f32[4] @ Neon
            for i in seq(0, 4):
                buf[i] = x[i]
            for i in seq(0, 4):
                y[i] = buf[i]

        # the store pattern does not unify with the first (load) loop; the
        # second candidate must be found automatically
        p = replace(load_then_store, "for i in _: _", neon_vst_4xf32)
        assert p.find("neon_vst_4xf32(_)").stmt()
        p = replace(p, "for i in _: _", neon_vld_4xf32)
        assert_equivalent(load_then_store, p, sizes={})


class TestRejects:
    def test_wrong_operation_rejected(self):
        @proc
        def subtracts(dst: f32[4] @ Neon, src: f32[4] @ DRAM):
            for i in seq(0, 4):
                dst[i] = src[i] * 2.0

        with pytest.raises(SchedulingError, match="no candidate"):
            replace(subtracts, "for i in _: _", neon_vld_4xf32)

    def test_wrong_trip_count_rejected(self):
        @proc
        def five(dst: f32[5] @ Neon, src: f32[5] @ DRAM):
            for i in seq(0, 5):
                dst[i] = src[i]

        with pytest.raises(SchedulingError, match="no candidate"):
            replace(five, "for i in _: _", neon_vld_4xf32)

    def test_reduce_vs_assign_rejected(self):
        @proc
        def accumulates(dst: f32[4] @ Neon, src: f32[4] @ DRAM):
            for i in seq(0, 4):
                dst[i] += src[i]

        with pytest.raises(SchedulingError, match="no candidate"):
            replace(accumulates, "for i in _: _", neon_vld_4xf32)

    def test_strided_source_rejected(self):
        @proc
        def strided(dst: f32[4] @ Neon, src: f32[4, 4] @ DRAM):
            for i in seq(0, 4):
                dst[i] = src[i, 0]

        with pytest.raises(SchedulingError, match="stride"):
            replace(strided, "for i in _: _", neon_vld_4xf32)

    def test_register_file_mismatch_rejected(self):
        from repro.core import AVX512

        @proc
        def wrong_reg(dst: f32[4] @ AVX512, src: f32[4] @ DRAM):
            for i in seq(0, 4):
                dst[i] = src[i]

        with pytest.raises(SchedulingError, match="register file"):
            replace(wrong_reg, "for i in _: _", neon_vld_4xf32)

    def test_dtype_mismatch_rejected(self):
        @proc
        def doubles(dst: f64[4] @ Neon, src: f64[4] @ DRAM):
            for i in seq(0, 4):
                dst[i] = src[i]

        with pytest.raises(SchedulingError, match="type"):
            replace(doubles, "for i in _: _", neon_vld_4xf32)

    def test_unprovable_lane_bound_rejected(self):
        @proc
        def lane_oob(C: f32[8, 4] @ Neon, A: f32[4] @ Neon, B: f32[8] @ Neon):
            for j in seq(0, 8):
                for i in seq(0, 4):
                    C[j, i] += A[i] * B[j]

        # j ranges over [0, 8) but vfmaq_laneq_f32 requires l < 4
        with pytest.raises(SchedulingError, match="no candidate"):
            replace(lane_oob, "for i in _: _", neon_vfmla_4xf32_4xf32)

    def test_captured_iterator_rejected(self):
        @proc
        def captures(dst: f32[4, 4] @ Neon, src: f32[4] @ DRAM):
            for i in seq(0, 4):
                dst[i, i] = src[i]

        # dst would need a window indexed by the eliminated iterator
        with pytest.raises(SchedulingError, match="no candidate"):
            replace(captures, "for i in _: _", neon_vld_4xf32)

    def test_non_unit_coefficient_rejected(self):
        @proc
        def gapped(dst: f32[8] @ Neon, src: f32[4] @ DRAM):
            for i in seq(0, 4):
                dst[2 * i] = src[i]

        with pytest.raises(SchedulingError, match="no candidate"):
            replace(gapped, "for i in _: _", neon_vld_4xf32)
