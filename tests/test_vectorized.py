"""Oracle-parity suite for the vectorized timing-model engine.

:mod:`repro.sim.vectorized` must match the scalar model *bit for bit* —
equality, never ``approx`` — because the grid search breaks wall-clock
ties on exact float comparison.  The scalar path
(:func:`repro.eval.harness.exo_gemm_breakdown`,
:func:`repro.sim.parallel.parallel_gemm_breakdown` with
``search="scalar"``) is the golden oracle; these tests fuzz shapes,
machines, thread counts, and jc/ic/pc grids against it, cross-check the
pre-NUMA golden pins, and pin the batch profile hook's event shape.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blis.params import analytical_tile_params, clamp_tiles
from repro.eval.harness import (
    exo_gemm_breakdown,
    exo_parallel_breakdown,
    machine_context,
    plane_chunk_plans,
)
from repro.isa.machine import MACHINES
from repro.obs import MetricsRegistry, Tracer, VirtualClock
from repro.obs import profile as obs_profile
from repro.sim import vectorized as vec
from repro.sim.memory import GemmShape
from repro.sim.parallel import (
    candidate_grids,
    parallel_gemm_breakdown,
    partition_plane,
)

_CTX = {}


def ctx_for(name):
    if name not in _CTX:
        _CTX[name] = machine_context(MACHINES[name])
    return _CTX[name]


def serial_batch(ctx, shapes):
    """One ``kind="serial"`` batch over ``shapes`` on ``ctx``'s machine."""
    machine = ctx.machine
    mr, nr = ctx.main_tile
    tiles = [
        clamp_tiles(analytical_tile_params(mr, nr, machine), m, n, k)
        for m, n, k in shapes
    ]
    return vec.CandidateBatch(
        machines=(machine,),
        m=[s[0] for s in shapes],
        n=[s[1] for s in shapes],
        k=[s[2] for s in shapes],
        mr=mr,
        nr=nr,
        kc=[t.kc for t in tiles],
        nc=[t.nc for t in tiles],
        plan_source=lambda i, m, n: vec.plan_costs(
            plane_chunk_plans(ctx, m, n, mr, nr), ctx.model
        ),
        kind="serial",
    )


def grid_batch(ctx, m, n, k, grids):
    """One ``kind="grid"`` batch: every grid of one shape on one machine."""
    machine = ctx.machine
    mr, nr = ctx.main_tile
    tiles = clamp_tiles(analytical_tile_params(mr, nr, machine), m, n, k)
    memo = {}

    def source(_i, m_t, n_t):
        if (m_t, n_t) not in memo:
            memo[(m_t, n_t)] = vec.plan_costs(
                plane_chunk_plans(ctx, m_t, n_t, mr, nr), ctx.model
            )
        return memo[(m_t, n_t)]

    return vec.CandidateBatch(
        machines=(machine,),
        m=m, n=n, k=k, mr=mr, nr=nr, kc=tiles.kc, nc=tiles.nc,
        jc=[g[0] for g in grids],
        ic=[g[1] for g in grids],
        pc=[g[2] for g in grids],
        plan_source=source,
        kind="grid",
    ), tiles


SERIAL_FIELDS = (
    "compute_cycles", "pack_cycles", "c_stall_cycles",
    "dram_limit_cycles", "total_cycles", "gflops", "flops",
)


class TestSerialParity:
    """``kind="serial"`` rows == ``gemm_time_model``, bitwise."""

    @given(
        name=st.sampled_from(sorted(MACHINES)),
        m=st.integers(min_value=1, max_value=2500),
        n=st.integers(min_value=1, max_value=2500),
        k=st.integers(min_value=1, max_value=4000),
    )
    @settings(max_examples=60, deadline=None)
    def test_fuzzed_shapes_match_exactly(self, name, m, n, k):
        ctx = ctx_for(name)
        want = exo_gemm_breakdown(m, n, k, main=ctx.main_tile, ctx=ctx)
        got = vec.batch_gemm_cycles(serial_batch(ctx, [(m, n, k)]))
        for field in SERIAL_FIELDS:
            assert getattr(got, field)[0] == getattr(want, field), field

    def test_multi_row_batch_rows_are_independent(self):
        ctx = ctx_for("avx512")
        shapes = [(7, 9, 5), (2000, 2000, 2000), (1, 1, 1), (500, 2, 3000)]
        got = vec.batch_gemm_cycles(serial_batch(ctx, shapes))
        assert len(got) == len(shapes)
        for i, (m, n, k) in enumerate(shapes):
            want = exo_gemm_breakdown(m, n, k, main=ctx.main_tile, ctx=ctx)
            for field in SERIAL_FIELDS:
                assert getattr(got, field)[i] == getattr(want, field), field
        assert got.eff_jc.tolist() == [1] * len(shapes)

    def test_multi_machine_batch_gathers_per_row(self):
        machines = tuple(MACHINES[n] for n in ("carmel", "avx512"))
        ctxs = [ctx_for(n) for n in ("carmel", "avx512")]
        m, n, k = 256, 256, 256
        rows = []
        for ctx in ctxs:
            mr, nr = ctx.main_tile
            t = clamp_tiles(
                analytical_tile_params(mr, nr, ctx.machine), m, n, k
            )
            rows.append((mr, nr, t.kc, t.nc))

        def source(i, m_p, n_p):
            ctx = ctxs[i]
            return vec.plan_costs(
                plane_chunk_plans(ctx, m_p, n_p, *ctx.main_tile), ctx.model
            )

        got = vec.batch_gemm_cycles(
            vec.CandidateBatch(
                machines=machines,
                m=m, n=n, k=k,
                mr=[r[0] for r in rows],
                nr=[r[1] for r in rows],
                kc=[r[2] for r in rows],
                nc=[r[3] for r in rows],
                machine_idx=[0, 1],
                plan_source=source,
                kind="serial",
            )
        )
        for i, ctx in enumerate(ctxs):
            want = exo_gemm_breakdown(m, n, k, main=ctx.main_tile, ctx=ctx)
            assert got.total_cycles[i] == want.total_cycles
            assert got.freq_ghz[i] == ctx.machine.freq_ghz


class TestGridParity:
    """``kind="grid"`` rows == pinned-partition scalar breakdowns."""

    @pytest.mark.parametrize("name", sorted(MACHINES))
    @pytest.mark.parametrize(
        "shape", [(2000, 2000, 2000), (97, 1003, 64), (31, 17, 1500)]
    )
    def test_every_grid_matches_scalar_pin(self, name, shape):
        ctx = ctx_for(name)
        machine = ctx.machine
        mr, nr = ctx.main_tile
        m, n, k = shape
        threads = machine.cores
        tiles = clamp_tiles(analytical_tile_params(mr, nr, machine), m, n, k)
        grids = candidate_grids(
            threads, m, n, machine, mr, nr, k=k, kc=tiles.kc
        )
        batch, _ = grid_batch(ctx, m, n, k, grids)
        got = vec.batch_gemm_cycles(batch)
        for gi, (jc, ic, pc) in enumerate(grids):
            part = partition_plane(
                m, n, threads, machine, mr, nr,
                jc_ways=jc, ic_ways=ic, pc_ways=pc, k=k, kc=tiles.kc,
            )
            want = parallel_gemm_breakdown(
                GemmShape(m, n, k), tiles, threads,
                machine=machine, model=ctx.model,
                plan_builder=lambda mt, nt: plane_chunk_plans(
                    ctx, mt, nt, mr, nr
                ),
                partition=part,
            )
            assert got.total_cycles[gi] == want.total_cycles
            assert got.compute_cycles[gi] == want.compute_cycles
            assert got.pack_cycles[gi] == want.pack_cycles
            assert got.c_stall_cycles[gi] == want.c_stall_cycles
            assert got.reduction_cycles[gi] == want.reduction_cycles
            assert got.dram_limit_cycles[gi] == want.dram_limit_cycles
            assert (
                int(got.eff_jc[gi]), int(got.eff_ic[gi]), int(got.eff_pc[gi])
            ) == (part.jc_ways, part.ic_ways, part.pc_ways)

    @given(
        name=st.sampled_from(sorted(MACHINES)),
        m=st.integers(min_value=1, max_value=1200),
        n=st.integers(min_value=1, max_value=1200),
        k=st.integers(min_value=1, max_value=3000),
        threads=st.integers(min_value=2, max_value=32),
    )
    @settings(max_examples=40, deadline=None)
    def test_fuzzed_search_engines_agree(self, name, m, n, k, threads):
        ctx = ctx_for(name)
        scalar = exo_parallel_breakdown(
            m, n, k, threads, ctx=ctx, search="scalar"
        )
        vectorized = exo_parallel_breakdown(
            m, n, k, threads, ctx=ctx, search="vectorized"
        )
        assert vectorized.partition_label == scalar.partition_label
        for field in (
            "compute_cycles", "pack_cycles", "c_stall_cycles",
            "reduction_cycles", "dram_limit_cycles", "total_cycles",
            "gflops", "thread_busy_cycles",
        ):
            assert getattr(vectorized, field) == getattr(scalar, field), field

    def test_search_argument_validated(self):
        ctx = ctx_for("carmel")
        with pytest.raises(ValueError, match="search must be"):
            exo_parallel_breakdown(64, 64, 64, 2, ctx=ctx, search="simd")


GOLDEN = json.loads(
    (Path(__file__).parent / "data" / "threaded_golden.json").read_text()
)


class TestGoldenCrossCheck:
    """The batch engine reproduces the PR-5 golden pins end to end."""

    @pytest.mark.parametrize("key", sorted(GOLDEN))
    def test_batch_winner_matches_golden_pin(self, key):
        name, shape_spec, t_spec = key.split("|")
        m, n, k = (int(d) for d in shape_spec.split("x"))
        threads = int(t_spec[1:])
        ctx = ctx_for(name)
        mr, nr = ctx.main_tile
        tiles = clamp_tiles(
            analytical_tile_params(mr, nr, ctx.machine), m, n, k
        )
        grids = [
            g
            for g in candidate_grids(
                threads, m, n, ctx.machine, mr, nr, k=k, kc=tiles.kc
            )
            if g[2] == 1  # the golden pins predate the pc split
        ]
        batch, _ = grid_batch(ctx, m, n, k, grids)
        scored = vec.batch_gemm_cycles(batch)
        win = vec.best_grid_indices(scored, (0, len(grids)))[0]
        want = GOLDEN[key]
        assert scored.total_cycles[win] == want["total"]
        assert (int(scored.eff_jc[win]), int(scored.eff_ic[win])) == (
            want["jc"], want["ic"]
        )


class TestBatchValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown batch kind"):
            vec.CandidateBatch(
                machines=(MACHINES["carmel"],),
                m=1, n=1, k=1, mr=8, nr=12, kc=256, nc=1788,
                plan_source=lambda *a: (),
                kind="tensor",
            )

    def test_scalars_broadcast_against_arrays(self):
        batch = vec.CandidateBatch(
            machines=(MACHINES["carmel"],),
            m=100, n=200, k=300, mr=8, nr=12, kc=256, nc=1788,
            jc=[1, 2, 4], ic=[4, 2, 1],
            plan_source=lambda *a: (),
            kind="grid",
        )
        assert len(batch) == 3
        assert batch.m.tolist() == [100, 100, 100]
        assert batch.pc.tolist() == [1, 1, 1]
        assert batch.m.dtype == np.int64

    def test_single_machine_needs_no_tuple(self):
        batch = vec.CandidateBatch(
            machines=MACHINES["carmel"],
            m=[5, 6], n=7, k=8, mr=8, nr=12, kc=256, nc=1788,
            plan_source=lambda *a: (),
        )
        assert batch.machines == (MACHINES["carmel"],)
        assert len(batch) == 2


class TestBatchProfileHook:
    def test_one_record_per_batch_with_candidate_count(self):
        ctx = ctx_for("carmel")
        clock = VirtualClock()
        profiler = obs_profile.GemmProfiler(
            tracer=Tracer(clock=clock), metrics=MetricsRegistry()
        )
        shapes = [(64, 48, 64), (128, 96, 128), (7, 9, 5)]
        with obs_profile.using(profiler):
            vec.batch_gemm_cycles(serial_batch(ctx, shapes))
        assert len(profiler.records) == 1
        record = profiler.records[0]
        assert record["kind"] == "batch.serial"
        assert record["candidates"] == len(shapes)
        snap = profiler.metrics.to_json()
        assert snap["model.candidates_evaluated"]["value"] == len(shapes)
        assert snap["gemm.evaluations.batch"]["value"] == 1
        events = profiler.tracer.chrome_trace()["traceEvents"]
        assert any(e["name"] == "model batch [serial]" for e in events)

    def test_profile_false_stays_silent(self):
        ctx = ctx_for("carmel")
        profiler = obs_profile.GemmProfiler(metrics=MetricsRegistry())
        with obs_profile.using(profiler):
            vec.batch_gemm_cycles(
                serial_batch(ctx, [(64, 48, 64)]), profile=False
            )
        assert profiler.records == []
