"""Tests for the instruction libraries: semantics and metadata."""

from __future__ import annotations

import numpy as np
import pytest

from repro.isa import CARMEL, GENERIC_ARM
from repro.isa.avx512 import AVX512_F32_LIB, mm512_fmadd_ps, mm512_loadu_ps
from repro.isa.machine import AVX512_SERVER
from repro.isa.neon import (
    NEON_F32_LIB,
    neon_vadd_4xf32,
    neon_vdup_4xf32,
    neon_vfmadd_4xf32_4xf32,
    neon_vfmla_4xf32_4xf32,
    neon_vld_4xf32,
    neon_vmul_4xf32,
    neon_vst_4xf32,
    neon_vzero_4xf32,
)
from repro.isa.neon_fp16 import NEON_F16_LIB, neon_vfmla_8xf16_8xf16


class TestNeonSemantics:
    def test_load_copies(self):
        dst = np.zeros(4, dtype=np.float32)
        src = np.arange(4, dtype=np.float32)
        neon_vld_4xf32.interpret(dst, src)
        np.testing.assert_array_equal(dst, src)

    def test_store_copies(self):
        dst = np.zeros(4, dtype=np.float32)
        src = np.arange(4, dtype=np.float32)
        neon_vst_4xf32.interpret(dst, src)
        np.testing.assert_array_equal(dst, src)

    def test_fmla_lane(self):
        dst = np.ones(4, dtype=np.float32)
        lhs = np.arange(4, dtype=np.float32)
        rhs = np.array([2, 3, 4, 5], dtype=np.float32)
        neon_vfmla_4xf32_4xf32.interpret(dst, lhs, rhs, 1)
        np.testing.assert_allclose(dst, 1 + lhs * 3)

    def test_fmla_lane_bounds_checked(self):
        from repro.core import InterpError

        dst = np.ones(4, dtype=np.float32)
        with pytest.raises(InterpError, match="precondition"):
            neon_vfmla_4xf32_4xf32.interpret(dst, dst.copy(), dst.copy(), 7)

    def test_vfmadd(self):
        dst = np.zeros(4, dtype=np.float32)
        a = np.arange(4, dtype=np.float32)
        b = np.full(4, 2.0, dtype=np.float32)
        neon_vfmadd_4xf32_4xf32.interpret(dst, a, b)
        np.testing.assert_allclose(dst, a * 2)

    def test_broadcast(self):
        dst = np.zeros(4, dtype=np.float32)
        src = np.array([7.0], dtype=np.float32)
        neon_vdup_4xf32.interpret(dst, src)
        np.testing.assert_array_equal(dst, 7.0)

    def test_zero(self):
        dst = np.ones(4, dtype=np.float32)
        neon_vzero_4xf32.interpret(dst)
        np.testing.assert_array_equal(dst, 0.0)

    def test_mul_add(self):
        a = np.arange(4, dtype=np.float32)
        b = np.full(4, 3.0, dtype=np.float32)
        out = np.zeros(4, dtype=np.float32)
        neon_vmul_4xf32.interpret(out, a, b)
        np.testing.assert_allclose(out, a * 3)
        neon_vadd_4xf32.interpret(out, out.copy(), a)
        np.testing.assert_allclose(out, a * 4)


class TestF16AndAvx:
    def test_fp16_fmla(self):
        dst = np.zeros(8, dtype=np.float16)
        lhs = np.arange(8, dtype=np.float16)
        rhs = np.arange(8, dtype=np.float16)
        neon_vfmla_8xf16_8xf16.interpret(dst, lhs, rhs, 2)
        np.testing.assert_allclose(dst.astype(np.float64), lhs.astype(np.float64) * 2)

    def test_avx512_load_and_fma(self):
        dst = np.zeros(16, dtype=np.float32)
        src = np.arange(16, dtype=np.float32)
        mm512_loadu_ps.interpret(dst, src)
        np.testing.assert_array_equal(dst, src)
        acc = np.ones(16, dtype=np.float32)
        mm512_fmadd_ps.interpret(acc, src, src)
        np.testing.assert_allclose(acc, 1 + src * src)


class TestLibraries:
    @pytest.mark.parametrize("lib", [NEON_F32_LIB, NEON_F16_LIB, AVX512_F32_LIB])
    def test_library_slots(self, lib):
        for slot in ("load", "store", "fma", "broadcast", "zero"):
            assert slot in lib
        assert lib["lanes"] in (4, 8, 16)

    def test_instr_metadata(self):
        info = neon_vfmla_4xf32_4xf32.ir.instr
        assert info.pipe == "fma"
        assert info.latency == 4
        assert "vfmaq_laneq_f32" in info.c_instr

    def test_load_metadata(self):
        info = neon_vld_4xf32.ir.instr
        assert info.pipe == "load"


class TestMachineModels:
    def test_carmel_peak(self):
        # 2 FMA pipes x 4 lanes x 2 flops x 2.3 GHz
        assert CARMEL.peak_gflops() == pytest.approx(36.8)

    def test_carmel_fp16_peak_doubles(self):
        assert CARMEL.peak_gflops(16) == pytest.approx(73.6)

    def test_pipe_counts(self):
        assert CARMEL.pipe_count("fma") == 2
        assert CARMEL.pipe_count("store") == 1
        assert CARMEL.pipe_count("unknown") == 1

    def test_cache_lookup(self):
        assert CARMEL.cache("L1").size_bytes == 64 * 1024
        with pytest.raises(KeyError):
            CARMEL.cache("L4")

    def test_generic_arm_is_smaller(self):
        assert GENERIC_ARM.peak_gflops() < CARMEL.peak_gflops()

    def test_avx512_server_wide_vectors(self):
        assert AVX512_SERVER.vector_lanes() == 16
