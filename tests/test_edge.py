"""Tests for edge-case decomposition and tile covering."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ukernel.edge import (
    decompose_extent,
    decompose_extent_vla,
    monolithic_cover,
    tile_cover,
    useful_fraction,
    vla_tile_cover,
)
from repro.ukernel.registry import DEFAULT_FAMILY


class TestDecompose:
    def test_exact_fit(self):
        assert decompose_extent(24, [8, 4, 1]) == [8, 8, 8]

    def test_mixed_chunks(self):
        assert decompose_extent(49, [8, 4, 1]) == [8] * 6 + [1]

    def test_ragged_pads_smallest(self):
        # 7 = 4 + 2 leftover -> one 4, then padding chunk of 4... with sizes
        # [8, 4]: 7 -> [4] + remainder 3 -> padded [4]
        assert decompose_extent(7, [8, 4]) == [4, 4]

    def test_single_size(self):
        assert decompose_extent(10, [4]) == [4, 4, 4]

    def test_invalid_extent(self):
        with pytest.raises(ValueError):
            decompose_extent(0, [4])

    @given(st.integers(1, 200))
    @settings(max_examples=50)
    def test_cover_is_sufficient_and_tight(self, extent):
        chunks = decompose_extent(extent, [8, 4, 1])
        assert sum(chunks) >= extent
        # with a size-1 chunk available the cover is exact
        assert sum(chunks) == extent

    @given(st.integers(1, 200))
    @settings(max_examples=50)
    def test_cover_padding_bounded(self, extent):
        chunks = decompose_extent(extent, [8, 4])
        assert 0 <= sum(chunks) - extent < 4


class TestTileCover:
    def test_resnet_49x512(self):
        cover = tile_cover(49, 512, DEFAULT_FAMILY)
        # 49 -> 6x8 + 1x1 rows; 512 -> 42x12 + 1x8 columns
        assert cover[(8, 12)] == 6 * 42
        assert cover[(8, 8)] == 6
        assert cover[(1, 12)] == 42
        assert cover[(1, 8)] == 1
        total = sum((mr * nr) * c for (mr, nr), c in cover.items())
        assert total == 49 * 512

    def test_exact_shape_single_class(self):
        cover = tile_cover(16, 24, DEFAULT_FAMILY)
        assert cover == {(8, 12): 4}

    def test_missing_combination_raises(self):
        # m=9 -> rows of 8 and 1; n=20 -> widths 12 and 8; the (8, 8)
        # combination is absent from this family
        with pytest.raises(KeyError, match="family"):
            tile_cover(9, 20, [(8, 12), (1, 12), (1, 8)])

    @given(st.integers(1, 300), st.integers(1, 300))
    @settings(max_examples=40)
    def test_cover_area_exact_up_to_width_padding(self, m, n):
        cover = tile_cover(m, n, DEFAULT_FAMILY)
        area = sum(mr * nr * c for (mr, nr), c in cover.items())
        # rows decompose exactly (1-row tails exist); the width remainder
        # is padded by at most one 4-wide column of tiles
        assert m * n <= area < m * (n + 4)


class TestVlaDecompose:
    """Predicated tails on vector-length-agnostic ISAs: exact covers."""

    def test_exact_fit(self):
        assert decompose_extent_vla(16, 4) == [4, 4, 4, 4]

    def test_ragged_tail_not_padded(self):
        assert decompose_extent_vla(7, 4) == [4, 3]
        assert decompose_extent_vla(3, 4) == [3]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            decompose_extent_vla(0, 4)
        with pytest.raises(ValueError):
            decompose_extent_vla(7, 0)

    @given(st.integers(1, 500), st.integers(1, 16))
    @settings(max_examples=60)
    def test_cover_always_exact(self, extent, lanes):
        chunks = decompose_extent_vla(extent, lanes)
        assert sum(chunks) == extent
        assert all(0 < c <= lanes for c in chunks)
        # at most one reduced-vl tail, and it comes last
        short = [c for c in chunks if c < lanes]
        assert len(short) <= 1
        if short:
            assert chunks[-1] == short[0]


class TestVlaTileCover:
    def test_exact_area_no_family_constraint(self):
        cover = vla_tile_cover(49, 500, 8, 12)
        area = sum(h * w * c for (h, w), c in cover.items())
        assert area == 49 * 500
        # the ragged classes exist without being family members
        assert (1, 12) in cover and (8, 8) in cover

    def test_lane_multiple_plane_single_class(self):
        assert vla_tile_cover(16, 24, 8, 12) == {(8, 12): 4}

    @given(st.integers(1, 300), st.integers(1, 300))
    @settings(max_examples=40)
    def test_area_exact_everywhere(self, m, n):
        cover = vla_tile_cover(m, n, 8, 12)
        area = sum(h * w * c for (h, w), c in cover.items())
        assert area == m * n

    def test_tail_classes_runnable(self):
        """Every cover class is generable: lane-multiple heights directly,
        ragged heights via the VLA plan."""
        from repro.isa.rvv import rvv_lib_factory
        from repro.ukernel.generator import generate_vla_microkernel

        factory = rvv_lib_factory(128)
        cover = vla_tile_cover(11, 14, 8, 12)
        for h, w in cover:
            plan = generate_vla_microkernel(h, w, factory)
            assert sum(k.mr for _, k in plan.parts) == h


class TestMonolithic:
    def test_cover_counts(self):
        assert monolithic_cover(49, 512, 8, 12) == 7 * 43

    def test_useful_fraction(self):
        assert useful_fraction(8, 12, 8, 12) == 1.0
        assert useful_fraction(4, 4, 8, 12) == pytest.approx(16 / 96)

    @given(st.integers(1, 100), st.integers(1, 100))
    @settings(max_examples=40)
    def test_useful_fraction_bounds(self, m, n):
        frac = useful_fraction(m, n, 8, 12)
        assert 0 < frac <= 1.0
