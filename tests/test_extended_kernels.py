"""Tests for the extended generators: scaled (alpha/beta) and non-packed."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.loopir import Call, For
from repro.isa.avx512 import AVX512_F32_LIB
from repro.ukernel.extended import (
    generate_nopack_microkernel,
    generate_scaled_microkernel,
)


class TestNopackKernel:
    @pytest.fixture(scope="class")
    def kernel(self):
        return generate_nopack_microkernel(5, 12)

    def test_natural_layout_signature(self, kernel):
        names = kernel.proc.arg_names()
        assert names == ["KC", "A", "B", "C"]
        text = str(kernel.proc)
        assert "A: f32[5, KC]" in text  # A unpacked, natural layout
        assert "C: f32[5, 12]" in text  # C not transposed

    def test_broadcasts_a(self, kernel):
        text = str(kernel.proc)
        assert "neon_vdup_4xf32(A_reg" in text
        assert "neon_vfmadd_4xf32_4xf32" in text
        assert "neon_vfmla" not in text  # item 4: plain FMA, no lane form

    def test_i_loop_not_split(self, kernel):
        # the paper's item 1: loop i is never divided
        assert "for it in" not in str(kernel.proc)

    @pytest.mark.parametrize("mr,kc", [(1, 4), (3, 7), (5, 6), (8, 5)])
    def test_semantics_any_mr(self, mr, kc):
        kernel = generate_nopack_microkernel(mr, 8)
        rng = np.random.default_rng(mr)
        a = rng.random((mr, kc), dtype=np.float32)
        b = rng.random((kc, 8), dtype=np.float32)
        c = rng.random((mr, 8), dtype=np.float32)
        expected = c + a @ b
        kernel.proc.interpret(kc, a, b, c)
        np.testing.assert_allclose(c, expected, rtol=1e-4)

    def test_rejects_ragged_nr(self):
        with pytest.raises(ValueError, match="divisible"):
            generate_nopack_microkernel(4, 10)

    def test_avx512_nopack(self):
        kernel = generate_nopack_microkernel(3, 16, AVX512_F32_LIB)
        kc = 4
        rng = np.random.default_rng(9)
        a = rng.random((3, kc), dtype=np.float32)
        b = rng.random((kc, 16), dtype=np.float32)
        c = np.zeros((3, 16), dtype=np.float32)
        kernel.proc.interpret(kc, a, b, c)
        np.testing.assert_allclose(c, a @ b, rtol=1e-4)

    def test_c_code_emits(self, kernel):
        code = kernel.proc.c_code()
        assert "vld1q_dup_f32" in code or "vld1q_f32" in code


class TestScaledKernel:
    @pytest.fixture(scope="class")
    def kernel(self):
        return generate_scaled_microkernel(8, 12)

    def _run(self, kernel, alpha, beta, kc=5, seed=0):
        rng = np.random.default_rng(seed)
        ac = rng.random((kc, 8), dtype=np.float32)
        bc = rng.random((kc, 12), dtype=np.float32)
        c = rng.random((12, 8), dtype=np.float32)
        expected = beta * c + alpha * (ac.T @ bc).T
        kernel.proc.interpret(
            kc,
            np.array([alpha], dtype=np.float32),
            ac,
            bc,
            np.array([beta], dtype=np.float32),
            c,
        )
        np.testing.assert_allclose(c, expected, rtol=1e-4, atol=1e-5)

    def test_identity_scaling(self, kernel):
        self._run(kernel, 1.0, 1.0)

    def test_general_alpha_beta(self, kernel):
        self._run(kernel, 0.5, 2.0, seed=1)

    def test_beta_zero_overwrites(self, kernel):
        self._run(kernel, 1.0, 0.0, seed=2)

    def test_alpha_zero_scales_only(self, kernel):
        self._run(kernel, 0.0, 3.0, seed=3)

    def test_scaling_nests_vectorized(self, kernel):
        text = str(kernel.proc)
        assert text.count("neon_vdup_4xf32") >= 2  # alpha and beta broadcasts
        assert "neon_vmul_4xf32" in text
        # the core still uses the lane FMA
        assert "neon_vfmla_4xf32_4xf32" in text

    def test_no_scalar_loops_remain_over_lanes(self, kernel):
        """Every innermost lane loop was replaced by an instruction."""

        def innermost_loops(block):
            for s in block:
                if isinstance(s, For):
                    if any(isinstance(b, For) for b in s.body):
                        yield from innermost_loops(s.body)
                    else:
                        yield s

        for loop in innermost_loops(kernel.proc.ir.body):
            assert all(isinstance(s, Call) for s in loop.body), str(loop.iter)

    def test_rejects_unsupported_shape(self):
        with pytest.raises(ValueError, match="divisible"):
            generate_scaled_microkernel(6, 12)

    def test_step_names(self, kernel):
        assert list(kernel.steps) == [
            "v1_specialized",
            "v2_scaling_vectorized",
            "v3_core",
            "v4_copy_back",
        ]
