#!/usr/bin/env python3
"""Portability: the same generator, five hardware targets.

The paper's Sections III-C and III-D argue that retargeting the micro-kernel
generator is a matter of swapping the instruction library handed to
``replace`` and calling ``set_precision``:

* ARM Neon f32 (the paper's platform) — lane-selecting FMA;
* ARM Neon f16 (the paper's contributed extension) — 8 lanes per register;
* Intel AVX-512 — no lane FMA, so the broadcast schedule is used, with
  ``_mm512_loadu_ps`` taking the place of ``vld1q_f32`` exactly as the
  paper describes;
* RISC-V Vector at VLEN=128 and VLEN=256 — the vector-length-agnostic
  case: the library itself is generated per VLEN, and the broadcast is
  fused into ``vfmacc.vf``.

Each generated kernel is validated against numpy through the interpreter.

Run:  python examples/portability.py
"""

from __future__ import annotations

import numpy as np

from repro import generate_microkernel
from repro.isa.avx512 import AVX512_F32_LIB
from repro.isa.machine import (
    AVX512_SERVER,
    CARMEL,
    RVV_EDGE_VLEN128,
    RVV_SERVER_VLEN256,
)
from repro.isa.neon import NEON_F32_LIB
from repro.isa.neon_fp16 import NEON_F16_LIB
from repro.isa.rvv import RVV128_F32_LIB, RVV256_F32_LIB
from repro.sim.pipeline import trace_from_kernel
from repro.sim.timing import solo_kernel_gflops


def validate(kernel, kc=16) -> bool:
    rng = np.random.default_rng(0)
    dt = np.float16 if kernel.dtype == "f16" else np.float32
    ac = rng.random((kc, kernel.mr)).astype(dt)
    bc = rng.random((kc, kernel.nr)).astype(dt)
    c = np.zeros((kernel.nr, kernel.mr), dtype=dt)
    kernel.proc.interpret(kc, ac, bc, c)
    expected = (ac.astype(np.float64).T @ bc.astype(np.float64)).T
    tol = 5e-2 if kernel.dtype == "f16" else 1e-4
    return np.allclose(c.astype(np.float64), expected, rtol=tol, atol=tol)


def main() -> None:
    targets = [
        ("ARM Neon f32", NEON_F32_LIB, (8, 12), CARMEL),
        ("ARM Neon f16", NEON_F16_LIB, (8, 16), CARMEL),
        ("Intel AVX-512 f32", AVX512_F32_LIB, (16, 14), AVX512_SERVER),
        ("RISC-V RVV f32 VLEN=128", RVV128_F32_LIB, (8, 12),
         RVV_EDGE_VLEN128),
        ("RISC-V RVV f32 VLEN=256", RVV256_F32_LIB, (8, 24),
         RVV_SERVER_VLEN256),
    ]
    for name, lib, (mr, nr), machine in targets:
        kernel = generate_microkernel(mr, nr, lib)
        trace = trace_from_kernel(kernel)
        gflops = solo_kernel_gflops(
            trace, mr, nr, kc=256, machine=machine,
            model=None,
        ) if machine is CARMEL else solo_kernel_gflops(
            trace, mr, nr, kc=256, machine=machine,
        )
        bits = 16 if kernel.dtype == "f16" else 32
        peak = machine.peak_gflops(bits)
        print("=" * 72)
        print(f"{name}: {kernel.name} ({kernel.variant} schedule)")
        print("=" * 72)
        print(f"  semantics vs numpy : {'OK' if validate(kernel) else 'FAIL'}")
        print(f"  modelled solo rate : {gflops:6.1f} GFLOPS "
              f"({100 * gflops / peak:.0f}% of {peak:.1f} peak)")
        first_call = next(
            line for line in kernel.proc.c_code().splitlines()
            if "(" in line and "vsetvl" not in line
            and ("vld1q" in line or "_mm512" in line or "__riscv_v" in line)
        )
        print(f"  sample intrinsic   : {first_call.strip()}")
        print()


if __name__ == "__main__":
    main()
