#!/usr/bin/env python3
"""Quickstart: generate the paper's 8x12 Neon micro-kernel, step by step.

This walks the exact pipeline of the paper's Section III (Figures 5-11):
write the naive kernel once, apply scheduling transforms, and get a kernel
that computes correctly (checked against numpy here, through the reference
interpreter) and compiles to the Figure-12 instruction stream.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import generate_microkernel, make_reference_kernel


def main() -> None:
    print("=" * 72)
    print("The naive micro-kernel (paper Figure 5):")
    print("=" * 72)
    print(make_reference_kernel())

    kernel = generate_microkernel(8, 12)

    for name, step in kernel.steps.items():
        print()
        print("=" * 72)
        print(f"Step {name}")
        print("=" * 72)
        print(step)

    print()
    print("=" * 72)
    print("Generated C (what the paper feeds to gcc):")
    print("=" * 72)
    print(kernel.proc.c_code())

    print("=" * 72)
    print("k-loop pseudo-assembly (paper Figure 12):")
    print("=" * 72)
    trace = kernel.proc.asm_trace()
    print(trace.listing)
    print(
        f"\n{trace.count('fmla')} fmla, "
        f"{trace.vector_loads()} vector loads "
        f"({trace.count('ldp')} ldp + {trace.count('ldr')} ldr), "
        f"{trace.reg_count} vector registers"
    )

    # run the kernel on real data through the reference interpreter
    kc = 64
    rng = np.random.default_rng(0)
    ac = rng.random((kc, 8), dtype=np.float32)
    bc = rng.random((kc, 12), dtype=np.float32)
    c = np.zeros((12, 8), dtype=np.float32)
    kernel.proc.interpret(kc, ac, bc, c)
    expected = (ac.T @ bc).T
    print(
        "\nkernel executes correctly:",
        np.allclose(c, expected, rtol=1e-5),
    )


if __name__ == "__main__":
    main()
