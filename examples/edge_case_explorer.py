#!/usr/bin/env python3
"""Edge-case explorer: why one monolithic kernel loses on DNN shapes.

For a chosen DNN-layer GEMM this script:

1. shows how the (m, n) plane decomposes into the generated kernel family
   (the paper's Section III-B strategy);
2. compares the modelled GFLOPS of the monolithic-8x12 approach (BLIS/NEON
   style, with masked edge tiles) against the exact-family approach
   (ALG+EXO), isolating the edge-case effect of the paper's Figure 13;
3. runs the paper's model-driven main-kernel selection ("the optimization
   process ... boils down to evaluating a number of generated
   micro-kernels") and reports which register tile wins.

Run:  python examples/edge_case_explorer.py [m n k]
"""

from __future__ import annotations

import sys

from repro.eval.harness import (
    all_config_breakdowns,
    best_exo_breakdown,
    default_context,
)
from repro.ukernel.edge import tile_cover, useful_fraction
from repro.ukernel.registry import DEFAULT_FAMILY
from repro.workloads.resnet50 import RESNET50_LAYERS


def explore(m: int, n: int, k: int) -> None:
    print(f"GEMM m={m}, n={n}, k={k}")
    print("=" * 60)

    cover = tile_cover(m, n, DEFAULT_FAMILY)
    print("kernel-family decomposition of the (m, n) plane:")
    for (mr, nr), count in sorted(cover.items(), reverse=True):
        print(f"  {count:6d} tiles of {mr}x{nr}")
    frac = useful_fraction(m, n, 8, 12)
    print(f"\nmonolithic 8x12 usefulness on this plane: {100 * frac:.1f}%")

    ctx = default_context()
    configs = all_config_breakdowns(m, n, k, ctx=ctx)
    print("\nmodelled GFLOPS per configuration:")
    for name, b in sorted(configs.items(), key=lambda kv: -kv[1].gflops):
        print(f"  {name:10s} {b.gflops:6.2f}  ({b.seconds * 1e3:.3f} ms)")

    shape, b = best_exo_breakdown(m, n, k, ctx=ctx)
    print(f"\nmodel-selected EXO main kernel: {shape[0]}x{shape[1]} "
          f"({b.gflops:.2f} GFLOPS)")


def main() -> None:
    if len(sys.argv) == 4:
        m, n, k = (int(v) for v in sys.argv[1:])
        explore(m, n, k)
        return
    # default: the two most edge-heavy ResNet50 layers (Table I, rows 17/20)
    for layer in (RESNET50_LAYERS[16], RESNET50_LAYERS[19]):
        explore(layer.m, layer.n, layer.k)
        print()


if __name__ == "__main__":
    main()
