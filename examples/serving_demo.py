"""End-to-end serving demo: tune, replay a trace, place replicas.

The full loop the serving subsystem closes:

1. tune the machine's micro-kernels for the workload's layer GEMMs
   (``repro.tune`` — winners land in a persistent timing cache);
2. activate that cache so per-layer kernel dispatch follows the tuned
   winners (the path shared with ``python -m repro.eval --use-tuned``);
3. replay a seeded arrival trace through the dynamic batcher and search
   replica x thread x batch configurations for the best throughput
   under a p99 latency SLO.

Run:  PYTHONPATH=src python examples/serving_demo.py
"""

from __future__ import annotations

import tempfile

from repro import tune
from repro.eval.report import render_table
from repro.isa.machine import CARMEL
from repro.serve import (
    Placement,
    save_trace,
    search_configurations,
    synthetic_trace,
)
from repro.workloads import VGG16_LAYERS

MODEL = "vgg16"
SLO_P99_MS = 800.0


def main() -> None:
    machine = CARMEL
    print(f"Serving {MODEL} on {machine.name} ({machine.cores} cores)\n")

    # -- 1. tune the workload's layer GEMMs ------------------------------
    problems = [(lyr.m, lyr.n, lyr.k) for lyr in VGG16_LAYERS]
    cache_root = tempfile.mkdtemp(prefix="serving-demo-tunecache-")
    cache = tune.TuneCache(cache_root)
    artifact = tune.sweep(("neon",), problems, cache=cache)
    winners = artifact["machines"]["neon"]["best"]
    print(f"tuned {len(winners)} layer GEMMs "
          f"({cache.misses} modelled, cache at {cache.root}):")
    for key, entry in sorted(winners.items()):
        mr, nr = entry["kernel"]
        print(f"  {key:>16s} -> {mr}x{nr} ({entry['gflops']:.1f} GFLOPS)")

    # -- 2+3. serve a trace with tuned dispatch --------------------------
    trace = synthetic_trace(rate_rps=3.0, duration_ms=3000.0, seed=42)
    trace_path = save_trace(trace, f"{cache_root}/trace.csv")
    print(f"\nreplaying {len(trace)} requests ({trace_path})")

    with tune.using(cache):
        best, outcomes = search_configurations(
            trace,
            machine,
            MODEL,
            slo_p99_ms=SLO_P99_MS,
            batch_candidates=(1, 2, 4),
            max_wait_ms=5.0,
            use_tuned=True,
            placements=[Placement(1, 8), Placement(2, 4), Placement(4, 2)],
        )

    rows = [
        {
            "config": o.label,
            "throughput_rps": o.metrics["throughput_rps"],
            "p50_ms": o.metrics["p50_ms"],
            "p99_ms": o.metrics["p99_ms"],
            "slo": "ok" if o.meets_slo(SLO_P99_MS) else "miss",
        }
        for o in outcomes
    ]
    print()
    print(render_table(rows, title=f"candidates (SLO p99 <= {SLO_P99_MS:g} ms)"))

    cfg = best.placement
    met = best.metrics
    print(
        f"\nSLO-optimal config: {cfg.replicas} replicas x "
        f"{cfg.threads_per_replica} threads, max batch "
        f"{best.policy.max_batch} -> {met['throughput_rps']:.1f} rps at "
        f"p99 {met['p99_ms']:.1f} ms"
    )
    print("per-layer tuned kernels (batch 1):")
    for row in best.executor.layer_records():
        if row["batch"] != 1:
            continue
        print(
            f"  layer {row['layer']:>2d}  {row['m']}x{row['n']}x{row['k']}"
            f"  -> {row['kernel']}  ({row['time_ms']:.2f} ms total)"
        )


if __name__ == "__main__":
    main()
