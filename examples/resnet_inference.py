#!/usr/bin/env python3
"""ResNet50 v1.5 inference GEMMs: the paper's Figures 15 and 16 workflow.

Two parts:

1. **Functional** — run one real DNN-layer GEMM (layer 17 of Table I:
   m=49, n=512, k=4608 is too big for the interpreter, so a scaled-down
   version with the same *edge structure* is used) through the five-loop
   BLIS-like algorithm with the generated kernel family, and check the
   result against numpy.  Layer shapes with m=49 exercise the 1xN row
   kernels the paper generated specifically for ResNet.

2. **Performance** — evaluate all 20 unique ResNet50 layer GEMMs (Table I)
   on the modelled Carmel core under the paper's four configurations, print
   the per-layer GFLOPS (Figure 15) and the aggregated inference time over
   all 53 layer instances (Figure 16).

Run:  python examples/resnet_inference.py
"""

from __future__ import annotations

import numpy as np

from repro import BlisGemm, naive_gemm
from repro.eval.harness import fig15_resnet_layer_data, fig16_resnet_time_data
from repro.eval.report import render_table, winners
from repro.sim.memory import TileParams
from repro.ukernel.registry import default_registry

CONFIGS = ["ALG+NEON", "ALG+BLIS", "BLIS", "ALG+EXO"]


def functional_demo() -> None:
    """A ragged GEMM with ResNet's m=49 edge structure, computed for real."""
    registry = default_registry()
    engine = BlisGemm(
        registry.family(),
        tiles=TileParams(mc=24, kc=16, nc=36, mr=8, nr=12),
    )
    m, n, k = 49, 24, 32  # same m-tail structure as ResNet layers 17-20
    rng = np.random.default_rng(1)
    a = rng.random((m, k), dtype=np.float32)
    b = rng.random((k, n), dtype=np.float32)
    c = np.zeros((m, n), dtype=np.float32)
    expected = naive_gemm(a, b, c.copy())
    engine(a, b, c)
    ok = np.allclose(c, expected, rtol=1e-4, atol=1e-4)
    print(f"functional {m}x{n}x{k} GEMM through the kernel family: "
          f"{'OK' if ok else 'FAIL'}")
    print(f"  m = 49 decomposes into row chunks: {engine.m_chunks(m)}")


def performance_demo() -> None:
    rows = fig15_resnet_layer_data()
    print()
    print(render_table(
        rows,
        columns=["layer", "m", "n", "k", *CONFIGS],
        title="Figure 15 — ResNet50 v1.5 per-layer GFLOPS (modelled)",
    ))
    wins = winners(rows, CONFIGS)
    print(f"\nALG+EXO is the best configuration on "
          f"{wins.count('ALG+EXO')} of {len(rows)} layers "
          f"(paper: 9 of 20); BLIS on {wins.count('BLIS')}.")

    times = fig16_resnet_time_data()
    final = times[-1]
    print("\nFigure 16 — aggregated inference time over 53 layers (s):")
    for name in sorted(CONFIGS, key=lambda c: final[c]):
        print(f"  {name:10s} {final[name]:.4f}")


if __name__ == "__main__":
    functional_demo()
    performance_demo()
